"""Probabilistic (r, s)-nucleus decomposition (local semantics).

Generalises the local (k, gamma)-truss decomposition of
:mod:`repro.core.local` from edges-supported-by-triangles to
r-cliques-supported-by-s-cliques, following Esfahani et al.'s
probabilistic nucleus semantics. Restricted to ``s = r + 1``
(``(2, 3)`` and ``(3, 4)``), every s-clique through an r-clique ``R``
is ``R`` plus one *apex* vertex ``x``, and the edges it adds —
``{(x, y) : y in R}`` — are disjoint across apexes. Conditioned on
``R`` existing, the supports are therefore independent Bernoulli
trials with success probability

    ``q_x = prod_{y in R} p(x, y)``

and the *entire* Eq. 5–8 support-probability machinery of
:class:`~repro.core.support_prob.SupportProbability` — the O(k^2)
dynamic program, the tail scan, and the Eq. 8 O(k) deconvolution
update — lifts unchanged: the factors are just ``q_x`` products of r
edge probabilities instead of two.

The *nucleus score* ``nu(R)`` is the largest k such that ``R`` belongs
to a sub-collection ``C`` of r-cliques where every member satisfies

    ``Pr[R exists] * Pr[sup_C(R) >= k - 2 | R exists] >= gamma``

with ``sup_C(R)`` counting only s-cliques whose r-subcliques all lie in
``C``. For ``(r, s) = (2, 3)`` this is *definitionally* the local
(k, gamma)-truss decomposition: ``q_x`` reduces to the co-triangle
probability of Eq. 5 and ``Pr[R exists]`` to ``p(e)``, so the score
dict equals :func:`~repro.core.local.local_truss_decomposition`'s
``trussness`` — the built-in differential oracle the test battery
leans on. The truss-style numbering ``k = support threshold + 2`` is
kept for every (r, s).

All factor orderings here are canonical (sorted by a cross-type node
key), so serial runs and every executor worker count produce
byte-identical scores.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field
from itertools import combinations

from repro.core.local import _LevelBuckets
from repro.core.support_prob import SupportProbability, support_pmf
from repro.exceptions import ParameterError
from repro.graphs.probabilistic import ProbabilisticGraph
from repro.truss.nucleus import (
    apex_candidates,
    clique_key,
    enumerate_r_cliques,
    validate_rs,
)

__all__ = [
    "NucleusResult",
    "nucleus_decomposition",
    "clique_probability",
    "apex_factor",
    "nucleus_cell",
]

Node = Hashable
Clique = tuple

_METHODS = ("dp", "baseline")

#: Peeled r-cliques between progress-hook notifications (same cadence
#: as the local-truss peel).
_PROGRESS_INTERVAL = 64


def _node_sort_key(w):
    """Canonical cross-type node ordering; mirrors
    :func:`repro.parallel.work.node_sort_key` (duplicated here because
    ``repro.parallel`` imports from ``repro.core``, not vice versa)."""
    return (type(w).__name__, str(w))


def clique_probability(graph: ProbabilisticGraph, cell: Clique) -> float:
    """``Pr[R exists]``: the product of R's own edge probabilities.

    Factors are folded in canonical pair order (the clique tuple is
    already canonical), so the result is byte-stable.
    """
    prob = 1.0
    for a, b in combinations(cell, 2):
        prob *= graph.probability(a, b)
    return prob


def apex_factor(graph: ProbabilisticGraph, cell: Clique, x: Node) -> float:
    """``q_x = prod_{y in R} p(x, y)`` — the probability that the
    s-clique ``R + {x}`` exists given that ``R`` does.

    For ``r = 2`` this reproduces
    :func:`~repro.core.support_prob.triangle_probabilities` bit for bit
    (same operand order; multiplication by the 1.0 seed is exact).
    """
    q = 1.0
    for y in cell:
        q *= graph.probability(x, y)
    return q


def nucleus_cell(
    graph: ProbabilisticGraph, gamma: float, cell: Clique
) -> tuple[list[float], list[float], int]:
    """Initial support state of one r-clique: ``(qs, pmf, level)``.

    The single authoritative float path for cell initialisation — the
    serial loop and the ``nucleus-cell`` pool task both call this, which
    is what makes every worker count byte-identical.
    """
    prob = clique_probability(graph, cell)
    apexes = sorted(apex_candidates(graph, cell), key=_node_sort_key)
    qs = [apex_factor(graph, cell, x) for x in apexes]
    pmf = support_pmf(qs)
    level = SupportProbability.from_factors(qs, pmf).level(gamma, prob)
    return qs, pmf, level


@dataclass
class NucleusResult:
    """Outcome of a probabilistic (r, s)-nucleus decomposition.

    Attributes
    ----------
    graph:
        The input probabilistic graph (unmodified).
    r, s:
        The nucleus family; only ``s = r + 1`` is supported.
    gamma:
        The probability threshold used.
    scores:
        ``{r-clique: nu}`` for every r-clique of the graph, with the
        truss-style offset (``nu >= 2`` means the clique survives the
        trivial threshold; ``nu = 1`` marks cliques whose own existence
        probability is already below gamma). For ``(2, 3)`` the keys
        are :func:`~repro.graphs.probabilistic.edge_key` tuples and the
        dict equals the local trussness map.
    method:
        ``"dp"`` or ``"baseline"``.
    """

    graph: ProbabilisticGraph
    r: int
    s: int
    gamma: float
    scores: dict[Clique, int]
    method: str = "dp"
    _edges_cache: dict[int, list[tuple]] = field(default_factory=dict,
                                                 repr=False)

    @property
    def k_max(self) -> int:
        """The largest k with a non-empty (k, gamma)-nucleus (>= 2), or 0."""
        top = max(self.scores.values(), default=0)
        return top if top >= 2 else 0

    def score_of(self, *nodes: Node) -> int:
        """Return ``nu`` of the r-clique on ``nodes`` (any order)."""
        if len(nodes) != self.r:
            raise ParameterError(
                f"expected {self.r} nodes for an r={self.r} clique, "
                f"got {len(nodes)}"
            )
        return self.scores[clique_key(nodes)]

    def nucleus_cliques(self, k: int) -> list[Clique]:
        """All r-cliques with score >= k."""
        if k < 2:
            raise ParameterError(f"k must be at least 2, got {k}")
        return [cell for cell, nu in self.scores.items() if nu >= k]

    def nucleus_edges(self, k: int) -> list[tuple]:
        """The distinct edges covered by the k-nucleus r-cliques.

        For ``r = 2`` these are the surviving edges themselves; for
        ``r = 3`` the union of the triangles' edges — the shape the
        containment-monotonicity property ((3,4) edges are a subset of
        (2,3) edges at matching thresholds) is stated over.
        """
        if k not in self._edges_cache:
            edges = {pair for cell in self.nucleus_cliques(k)
                     for pair in combinations(cell, 2)}
            self._edges_cache[k] = sorted(edges, key=_edge_order)
        return list(self._edges_cache[k])


def _edge_order(e: tuple) -> tuple:
    return tuple(_node_sort_key(w) for w in e)


def nucleus_decomposition(
    graph: ProbabilisticGraph,
    r: int,
    s: int,
    gamma: float,
    method: str = "dp",
    progress=None,
    executor=None,
) -> NucleusResult:
    """Compute the probabilistic (r, s)-nucleus score of every r-clique.

    Global peeling: repeatedly retire the r-clique whose current level
    is smallest; every s-clique through it stops supporting its other
    r-subcliques, whose PMFs shed the corresponding Bernoulli factor
    (Eq. 8 deconvolution for ``method="dp"``, full O(k^2) recompute for
    ``method="baseline"``).

    Parameters
    ----------
    graph:
        Input probabilistic graph (not modified).
    r, s:
        The nucleus family: ``(2, 3)`` (edges / triangles — identical
        to :func:`~repro.core.local.local_truss_decomposition`) or
        ``(3, 4)`` (triangles / 4-cliques).
    gamma:
        Threshold in [0, 1].
    method:
        ``"dp"`` or ``"baseline"`` (differential pair, as in Figure 5).
    progress:
        Optional progress hook, called with a ``"nucleus-peel"``
        :class:`~repro.runtime.progress.ProgressEvent` every
        ``_PROGRESS_INTERVAL`` peeled cliques. A raising hook aborts
        the peel; scores assigned so far (final — emitted in
        nondecreasing order) are attached as ``err.partial``.
    executor:
        Optional :class:`~repro.parallel.ParallelExecutor`; the initial
        support DPs then fan out in chunks via the ``nucleus-cell``
        task. Scores are byte-identical for every worker count
        (including ``None``): all factor orderings are canonical.

    Returns
    -------
    NucleusResult
    """
    validate_rs(r, s)
    if not 0.0 <= gamma <= 1.0:
        raise ParameterError(f"gamma must be in [0, 1], got {gamma}")
    if method not in _METHODS:
        raise ParameterError(f"method must be one of {_METHODS}, got {method!r}")

    cells = enumerate_r_cliques(graph, r)
    apexes: dict[Clique, list[Node]] = {
        cell: sorted(apex_candidates(graph, cell), key=_node_sort_key)
        for cell in cells
    }
    probs: dict[Clique, float] = {
        cell: clique_probability(graph, cell) for cell in cells
    }

    pmfs: dict[Clique, SupportProbability] = {}
    levels: dict[Clique, int] = {}
    if executor is not None and cells:
        # A few chunks per worker keeps stragglers short without
        # drowning the pool in dispatch overhead (same sizing rule as
        # the pmf-init fan-out).
        size = max(1, -(-len(cells) // (executor.pool_workers * 4)))
        payloads = [
            (r, gamma, cells[i:i + size]) for i in range(0, len(cells), size)
        ]
        for chunk in executor.map("nucleus-cell", payloads, progress=progress):
            for cell, qs, pmf, level in chunk:
                cell = tuple(cell)
                pmfs[cell] = SupportProbability.from_factors(qs, pmf)
                levels[cell] = level
    else:
        for cell in cells:
            qs, pmf, level = nucleus_cell(graph, gamma, cell)
            pmfs[cell] = SupportProbability.from_factors(qs, pmf)
            levels[cell] = level

    queue = _LevelBuckets(levels)
    scores: dict[Clique, int] = {}
    n_cells = len(cells)
    k = 1
    while queue:
        if progress is not None and scores and (
                len(scores) % _PROGRESS_INTERVAL == 0):
            from repro.runtime.progress import ProgressEvent

            try:
                progress(ProgressEvent(
                    "nucleus-peel", step=len(scores), total=n_cells,
                ))
            except Exception as err:
                # Salvage the final scores assigned so far for callers
                # that report partial results.
                if getattr(err, "partial", None) is None:
                    try:
                        err.partial = dict(scores)
                    except AttributeError:  # exceptions with __slots__
                        pass
                raise
        cell, lvl = queue.pop_min()
        # Running max mirrors the truss peel: a clique whose level
        # cascaded below the current stage still met the stage-k
        # stability condition when stage k began, so nu = k.
        k = max(k, lvl)
        scores[cell] = k
        affected: list[Clique] = []
        for x in apexes[cell]:
            # The s-clique S = cell + {x}. Its other r-subcliques each
            # drop one vertex y of `cell` and gain the apex; S supported
            # them only while *all* of them (and `cell`) were alive.
            siblings = [
                (clique_key(cell[:i] + cell[i + 1:] + (x,)), y)
                for i, y in enumerate(cell)
            ]
            if not all(queue.contains(o) for o, _ in siblings):
                continue
            for other, y in siblings:
                if method == "dp":
                    # Eq. 8 deconvolution: S's factor for `other` is the
                    # product of the edges from its lost apex y into
                    # `other` — the exact expression its initialisation
                    # folded in, so the factor matches bit for bit.
                    pmfs[other].remove_triangle(apex_factor(graph, other, y))
                affected.append(other)
        if method == "baseline":
            # Recompute affected PMFs from scratch with the full
            # O(k^2) dynamic program over the still-alive structure.
            for other in affected:
                qs = [
                    apex_factor(graph, other, x)
                    for x in apexes[other]
                    if _supports(queue, other, x)
                ]
                pmfs[other] = SupportProbability.from_factors(
                    qs, support_pmf(qs))
        # Refresh levels; shedding a support only lowers the tail
        # pointwise, so levels only decrease.
        for other in affected:
            queue.update(other, pmfs[other].level(gamma, probs[other]))
    return NucleusResult(graph=graph, r=r, s=s, gamma=gamma, scores=scores,
                         method=method)


def _supports(queue: _LevelBuckets, cell: Clique, x: Node) -> bool:
    """True while the s-clique ``cell + {x}`` still counts for ``cell``:
    every other r-subclique must be alive (un-peeled)."""
    return all(
        queue.contains(clique_key(cell[:i] + cell[i + 1:] + (x,)))
        for i in range(len(cell))
    )
