"""Gamma decomposition: fixed k, all thresholds gamma (paper §7, open problem 2).

The paper's future-work section asks: *given k, how to find maximal
(local) (k, gamma)-trusses for every possible gamma?* The problem is
well-defined because each edge has a largest gamma for which it still
belongs to some local (k, gamma)-truss; call it the edge's
**gamma-trussness** at order k:

    gamma_k(e) = max over subgraphs H containing e of
                 min over e' in H of  Pr[sup_H(e') >= k-2] * p(e').

This module solves it with the same peeling framework as Algorithm 1,
but peeling by the *value* ``sigma(e, k-2) p(e)`` instead of by level:
repeatedly remove the edge of minimum current value; the running
maximum of removed values at the time each edge is peeled is exactly its
gamma-trussness (the standard max-min peeling argument, as in
densest-subgraph / onion decompositions).

Given the map, the maximal local (k, gamma)-trusses for *any* gamma are
the edge-connected clusters of ``{e : gamma_k(e) >= gamma}`` — no
re-decomposition needed per gamma.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Hashable
from dataclasses import dataclass, field

from repro.exceptions import ParameterError
from repro.graphs.components import edge_connected_components
from repro.graphs.probabilistic import ProbabilisticGraph, edge_key
from repro.core.support_prob import SupportProbability

__all__ = ["GammaTrussResult", "gamma_truss_decomposition"]

Node = Hashable
Edge = tuple[Node, Node]


@dataclass
class GammaTrussResult:
    """Gamma-trussness of every edge at a fixed truss order k.

    Attributes
    ----------
    graph:
        The input probabilistic graph (unmodified).
    k:
        The fixed truss order (>= 2).
    gamma_trussness:
        ``{edge: gamma_k(e)}`` — the largest gamma for which the edge is
        in some local (k, gamma)-truss. Zero means the edge can never
        reach support k - 2 (e.g. too few structural triangles).
    """

    graph: ProbabilisticGraph
    k: int
    gamma_trussness: dict[Edge, float]
    _levels_cache: list[float] | None = field(default=None, repr=False)

    def gamma_of(self, u: Node, v: Node) -> float:
        """Return ``gamma_k((u, v))``."""
        return self.gamma_trussness[edge_key(u, v)]

    def thresholds(self) -> list[float]:
        """Distinct positive gamma values, descending.

        Between consecutive thresholds the decomposition is constant, so
        these are the only "interesting" gammas.
        """
        if self._levels_cache is None:
            values = {g for g in self.gamma_trussness.values() if g > 0.0}
            self._levels_cache = sorted(values, reverse=True)
        return list(self._levels_cache)

    def maximal_trusses_at(self, gamma: float) -> list[ProbabilisticGraph]:
        """Return the maximal local (k, gamma)-trusses for this gamma.

        Simply clusters ``{e : gamma_k(e) >= gamma}`` — O(surviving
        edges), no re-peeling.
        """
        if not 0.0 < gamma <= 1.0:
            raise ParameterError(f"gamma must be in (0, 1], got {gamma}")
        survivors = [
            e for e, g in self.gamma_trussness.items()
            if g >= gamma * (1.0 - 1e-9)
        ]
        clusters = edge_connected_components(self.graph, survivors)
        return [self.graph.edge_subgraph(c) for c in clusters]

    def hierarchy(self) -> dict[float, list[ProbabilisticGraph]]:
        """Return ``{gamma: maximal trusses}`` for every distinct threshold."""
        return {g: self.maximal_trusses_at(g) for g in self.thresholds()}


def gamma_truss_decomposition(
    graph: ProbabilisticGraph, k: int
) -> GammaTrussResult:
    """Compute the gamma-trussness of every edge at truss order ``k``.

    Max-min peeling: maintain each edge's current value
    ``sigma(e, k-2) * p(e)`` (updated with the Eq. 8 deconvolution as
    triangles disappear), repeatedly remove the minimum-value edge, and
    assign it the running maximum of removal values. Runs in
    O(m log m + triangle updates) — the heap replaces Algorithm 1's
    bucket queue because values are reals, not integers.
    """
    if k < 2:
        raise ParameterError(f"k must be at least 2, got {k}")
    work = graph.copy()
    pmfs: dict[Edge, SupportProbability] = {}
    values: dict[Edge, float] = {}
    for u, v, p in work.edges_with_probabilities():
        e = (u, v)
        sp = SupportProbability.from_edge(work, u, v)
        pmfs[e] = sp
        values[e] = sp.tail(k - 2) * p

    # Lazy-deletion heap; counter breaks value ties without comparing
    # edge keys (nodes may be of mixed types).
    counter = itertools.count()
    heap = [(value, next(counter), e) for e, value in values.items()]
    heapq.heapify(heap)
    alive = set(values)
    gamma_trussness: dict[Edge, float] = {}
    running = 0.0
    while alive:
        value, _, e = heapq.heappop(heap)
        if e not in alive or value > values[e] + 1e-18:
            continue  # stale entry
        alive.discard(e)
        running = max(running, values[e])
        gamma_trussness[e] = running
        u, v = e
        apexes = list(work.common_neighbors(u, v))
        for w in apexes:
            e_uw = edge_key(u, w)
            if e_uw in alive:
                q = work.probability(v, u) * work.probability(v, w)
                pmfs[e_uw].remove_triangle(q)
            e_vw = edge_key(v, w)
            if e_vw in alive:
                q = work.probability(u, v) * work.probability(u, w)
                pmfs[e_vw].remove_triangle(q)
        work.remove_edge(u, v)
        for w in apexes:
            for a, b in ((u, w), (v, w)):
                other = edge_key(a, b)
                if other in alive:
                    new_value = (
                        pmfs[other].tail(k - 2) * work.probability(a, b)
                    )
                    if new_value < values[other]:
                        values[other] = new_value
                        heapq.heappush(
                            heap, (new_value, next(counter), other)
                        )
    return GammaTrussResult(graph=graph, k=k, gamma_trussness=gamma_trussness)
