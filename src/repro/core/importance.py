"""Importance sampling for rare-event alpha estimation.

The paper's Monte-Carlo estimator (Eq. 10) needs on the order of
``1/alpha`` samples before it sees a single qualifying world — hopeless
in the regimes the paper itself cares about (the Section 6.5 case study
runs at gamma = 1e-11). This module adds an *unbiased* importance-
sampling estimator for ``alpha_k(H, e)``:

worlds are drawn from a tilted product distribution ``q_i >= p_i``
(qualifying worlds are edge-rich, so tilting up makes them common), and
each sampled world is reweighted by its likelihood ratio

    w(W) = prod_{i in W} p_i/q_i * prod_{i not in W} (1-p_i)/(1-q_i).

``E_q[w * I] = E_p[I] = alpha`` exactly, for any tilt — unbiasedness is
free; the tilt only controls variance. The default tilt lifts every
edge probability to at least ``tilt_floor`` (0.75), which concentrates
sampling mass on the near-complete worlds that dominate small-gamma
qualification events.
"""

from __future__ import annotations

import math
from collections.abc import Hashable

import numpy as np

from repro.exceptions import ParameterError
from repro.graphs.probabilistic import ProbabilisticGraph, edge_key
from repro.core.global_truss import world_is_connected_ktruss

__all__ = ["alpha_importance", "ImportanceEstimate"]

Node = Hashable
Edge = tuple[Node, Node]


class ImportanceEstimate(dict):
    """``{edge: alpha_hat}`` plus diagnostics of the sampling run.

    Attributes
    ----------
    n_samples:
        Worlds drawn.
    qualifying_fraction:
        Fraction of *tilted* worlds that qualified (connected spanning
        k-truss) — should be far above the raw alpha, or the tilt is
        not helping.
    effective_sample_size:
        Kish ESS of the importance weights; a small ESS relative to
        n_samples warns of weight degeneracy.
    """

    def __init__(self, estimates: dict[Edge, float], n_samples: int,
                 qualifying_fraction: float, effective_sample_size: float):
        super().__init__(estimates)
        self.n_samples = n_samples
        self.qualifying_fraction = qualifying_fraction
        self.effective_sample_size = effective_sample_size


def alpha_importance(
    subgraph: ProbabilisticGraph,
    k: int,
    n_samples: int = 1000,
    seed: int | np.random.Generator | None = None,
    tilt_floor: float = 0.75,
) -> ImportanceEstimate:
    """Estimate ``alpha_k(H, e)`` for every edge by importance sampling.

    Parameters
    ----------
    subgraph:
        The candidate probabilistic subgraph ``H``.
    k:
        Truss order (>= 2).
    n_samples:
        Number of tilted worlds to draw.
    seed:
        RNG seed.
    tilt_floor:
        Proposal edge probabilities are ``q_i = max(p_i, tilt_floor)``
        (edges with ``p_i = 0`` stay impossible: their true mass is
        zero in every qualifying world that contains them, and tilting
        them up would only add weighted-zero noise... they are kept at
        0 so the estimator never samples structurally impossible
        worlds with nonzero weight).

    Returns
    -------
    ImportanceEstimate
        Unbiased per-edge estimates plus diagnostics.
    """
    if k < 2:
        raise ParameterError(f"k must be at least 2, got {k}")
    if n_samples <= 0:
        raise ParameterError(f"n_samples must be positive, got {n_samples}")
    if not 0.0 < tilt_floor < 1.0:
        raise ParameterError(f"tilt_floor must be in (0, 1), got {tilt_floor}")
    rng = (
        seed if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )

    edges: list[Edge] = []
    p = []
    for u, v, prob in subgraph.edges_with_probabilities():
        edges.append(edge_key(u, v))
        p.append(prob)
    nodes = list(subgraph.nodes())
    m = len(edges)
    totals = {e: 0.0 for e in edges}
    if m == 0:
        return ImportanceEstimate(totals, n_samples, 0.0, 0.0)

    p = np.asarray(p)
    q = np.where(p > 0.0, np.maximum(p, tilt_floor), 0.0)
    # Per-edge log likelihood ratios for present/absent outcomes.
    with np.errstate(divide="ignore", invalid="ignore"):
        log_present = np.where(q > 0, np.log(p) - np.log(q), 0.0)
        log_absent = np.where(
            q < 1.0, np.log1p(-p) - np.log1p(-q), 0.0
        )
        # q == 1 only when p == 1: absent outcome never sampled there.

    draws = rng.random((n_samples, m)) < q
    qualifying = 0
    weights_seen: list[float] = []
    for row in draws:
        present_idx = np.flatnonzero(row)
        present = [edges[j] for j in present_idx]
        if not present:
            continue
        if not world_is_connected_ktruss(nodes, present, k):
            continue
        qualifying += 1
        log_w = float(log_present[row].sum() + log_absent[~row].sum())
        w = math.exp(log_w)
        weights_seen.append(w)
        for e in present:
            totals[e] += w

    estimates = {e: t / n_samples for e, t in totals.items()}
    if weights_seen:
        ws = np.asarray(weights_seen)
        ess = float(ws.sum() ** 2 / (ws ** 2).sum())
    else:
        ess = 0.0
    return ImportanceEstimate(
        estimates, n_samples, qualifying / n_samples, ess
    )
