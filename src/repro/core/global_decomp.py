"""Global (k, gamma)-truss decomposition (Section 5.3).

Implements the paper's backbone Algorithm 3 with both search
sub-procedures:

* **GTD** — :func:`top_down_search` (Algorithm 4): exact DFS that removes
  one edge at a time, recursing into the k-truss-pruned connected
  components. We memoise visited edge sets — without this the recursion
  revisits the same residual graphs exponentially often.
* **GBU** — :func:`bottom_up_search` (Algorithm 5): the heuristic that
  grows a candidate from a single high-probability seed edge, adding
  k - 2 supporting triangles per deficient edge, then extends satisfying
  candidates to maximality.

Candidate pruning follows Eq. (11): an edge can only appear in an
(eps, delta)-approximate global (k, gamma)-truss if it lies in a maximal
local (k, gamma)-truss *and* in some approximate global
(k-1, gamma)-truss; for k > 2 edges with fewer than k - 2 structural
triangles in the candidate graph are removed as well.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DecompositionError, ParameterError
from repro.graphs.components import edge_connected_components
from repro.graphs.probabilistic import ProbabilisticGraph, edge_key
from repro.graphs.sampling import WorldSampleSet, hoeffding_sample_size
from repro.core.global_truss import GlobalTrussOracle
from repro.core.local import LocalTrussResult, local_truss_decomposition
from repro.parallel.supervisor import QUARANTINED

__all__ = [
    "GlobalTrussResult",
    "global_truss_decomposition",
    "top_down_search",
    "bottom_up_search",
]

Node = Hashable
Edge = tuple[Node, Node]

_METHODS = ("gtd", "gbu")


@dataclass
class GlobalTrussResult:
    """Outcome of an approximate global (k, gamma)-truss decomposition.

    Attributes
    ----------
    graph:
        The input probabilistic graph.
    gamma, epsilon, delta:
        The quality parameters; ``n_samples`` worlds were used.
    trusses:
        ``{k: [maximal approximate global (k, gamma)-trusses]}``; each
        entry is an edge-subgraph of ``graph``.
    method:
        ``"gtd"`` or ``"gbu"``.
    """

    graph: ProbabilisticGraph
    gamma: float
    epsilon: float
    delta: float
    n_samples: int
    method: str
    trusses: dict[int, list[ProbabilisticGraph]] = field(default_factory=dict)

    @property
    def k_max(self) -> int:
        """Largest k with at least one satisfying truss (0 if none)."""
        return max((k for k, ts in self.trusses.items() if ts), default=0)

    def all_trusses(self) -> list[tuple[int, ProbabilisticGraph]]:
        """Return every (k, truss) pair, ascending in k."""
        out: list[tuple[int, ProbabilisticGraph]] = []
        for k in sorted(self.trusses):
            out.extend((k, t) for t in self.trusses[k])
        return out


def _prune_to_structural_ktruss(
    graph: ProbabilisticGraph, edges: set[Edge], k: int
) -> set[Edge]:
    """Iteratively drop edges with < k - 2 triangles within ``edges``.

    Probabilities are ignored (Algorithm 3 lines 6-7: "computed without
    considering edge probabilities").
    """
    if k <= 2:
        return set(edges)
    adj: dict[Node, set[Node]] = {}
    for u, v in edges:
        adj.setdefault(u, set()).add(v)
        adj.setdefault(v, set()).add(u)
    need = k - 2
    alive = set(edges)
    frontier = list(alive)
    while frontier:
        next_frontier: list[Edge] = []
        for u, v in frontier:
            if (u, v) not in alive:
                continue
            common = adj[u] & adj[v]
            if len(common) < need:
                alive.discard((u, v))
                adj[u].discard(v)
                adj[v].discard(u)
                # The co-triangle edges through each apex just lost one
                # supporting triangle — re-examine them next round.
                for w in common:
                    next_frontier.append(edge_key(u, w))
                    next_frontier.append(edge_key(v, w))
        frontier = next_frontier
    return alive


def _edge_sort_key(e: Edge):
    """Canonical edge ordering shared by every frontier/merge path."""
    return (str(e[0]), str(e[1]))


def _edge_subgraphs_of_components(
    graph: ProbabilisticGraph, edges: set[Edge]
) -> list[ProbabilisticGraph]:
    """Split ``edges`` into connected clusters and materialise subgraphs.

    Clusters and their edges are sorted before materialisation so the
    component processing order — and hence GBU's random-stream
    consumption — depends only on the edge *contents*, never on set
    iteration order. Checkpoint resume relies on this: a run restarted
    at a level boundary must consume the restored RNG stream exactly as
    the uninterrupted run would have.
    """
    ordered = [
        sorted(cluster, key=_edge_sort_key)
        for cluster in edge_connected_components(graph, edges)
    ]
    ordered.sort(key=lambda cluster: _edge_sort_key(cluster[0]))
    return [graph.edge_subgraph(cluster) for cluster in ordered]


def top_down_search(
    oracle: GlobalTrussOracle,
    k: int,
    component: ProbabilisticGraph,
    gamma: float,
    max_states: int | None = None,
    progress=None,
) -> list[ProbabilisticGraph]:
    """Algorithm 4: exact DFS for all satisfying trusses within ``component``.

    If ``component`` itself satisfies the approximate global truss test it
    is returned (it is maximal by construction); otherwise every
    single-edge deletion is explored, each followed by structural k-truss
    pruning and a split into connected components.

    ``max_states`` bounds the number of distinct residual edge-sets
    explored; exceeding it raises :class:`DecompositionError` — this is
    how callers emulate the paper's "GTD cannot finish in reasonable
    time" observations without hanging. ``progress`` (a hook taking a
    :class:`~repro.runtime.progress.ProgressEvent`) is notified with a
    ``"gtd-state"`` event per explored residual state and may abort the
    search by raising.
    """
    answers: dict[frozenset[Edge], ProbabilisticGraph] = {}
    visited: set[frozenset[Edge]] = set()
    stack = [component]
    while stack:
        candidate = stack.pop()
        key = frozenset(candidate.edges())
        if not key or key in visited:
            continue
        visited.add(key)
        if max_states is not None and len(visited) > max_states:
            raise DecompositionError(
                f"top-down search exceeded {max_states} explored states at k={k}"
            )
        if progress is not None:
            from repro.runtime.progress import ProgressEvent

            progress(ProgressEvent(
                "gtd-state", step=len(visited), detail={"k": k},
            ))
        if oracle.satisfies(candidate, k, gamma):
            answers[key] = candidate
            continue
        for e in list(candidate.edges()):
            remaining = set(key)
            remaining.discard(edge_key(*e))
            pruned = _prune_to_structural_ktruss(candidate, remaining, k)
            if not pruned:
                continue
            for piece in _edge_subgraphs_of_components(candidate, pruned):
                piece_key = frozenset(piece.edges())
                if piece_key not in visited:
                    stack.append(piece)
    return list(answers.values())


def _frontier_shards(frontier: list, workers: int) -> list[list]:
    """Split a peel round's frontier into canonical contiguous shards.

    Shard size is ``ceil(len(frontier) / (2 * workers))`` — oversplit
    two-fold so one slow shard cannot serialise a round. The boundaries
    depend on the worker count, but the merge preserves global candidate
    order (shard index, then within-shard position), so the merged round
    outcome is a pure function of the frontier contents alone.
    """
    if not frontier:
        return []
    shards = min(len(frontier), max(1, workers) * 2)
    size = -(-len(frontier) // shards)
    return [frontier[i:i + size] for i in range(0, len(frontier), size)]


def _canonical_edge_list(component: ProbabilisticGraph) -> list[Edge]:
    return sorted(
        (edge_key(u, v) for u, v in component.edges()), key=_edge_sort_key
    )


def _frontier_search(
    executor,
    oracle: GlobalTrussOracle,
    k: int,
    comp_index: int,
    component: ProbabilisticGraph,
    gamma: float,
    max_states: int | None,
    progress,
    level_found: dict,
    resume_state: dict | None = None,
) -> list[ProbabilisticGraph] | None:
    """Algorithm 4 as round-synchronous sharded frontier expansion.

    Explores exactly the state closure of :func:`top_down_search` — the
    set of residual edge-subsets reachable by repeated single-edge
    deletion, pruning, and splitting from ``component``, where only
    *non-satisfying* states expand — but one peel round at a time: every
    round evaluates the whole outstanding frontier, dispatched through
    the executor as canonical contiguous shards (``gtd-frontier`` task),
    then merges in shard-index order and within-shard candidate order.
    Since DFS and round-synchronous BFS compute the same closure, and
    every satisfying state of the closure is an answer in both, the
    answer *set* matches the serial search for every worker count —
    and :func:`~repro.runtime.result.serialize_global_result`
    canonicalises ordering, so the serialised output is bit-identical.

    ``max_states`` counts unique states merged into the visited set,
    mirroring the serial budget: the closure size alone decides whether
    :class:`DecompositionError` is raised, so the serial path and every
    worker count agree on the outcome.

    After each merged round a ``"gtd-frontier"`` progress event carries
    the complete mid-peel state (level answers so far, next frontier,
    visited set) — the harness checkpoints it, so kill/resume lands on
    a round boundary. ``resume_state`` restores exactly that snapshot.

    Returns None when a frontier shard was quarantined (the payload
    kept killing workers): the caller degrades this component to the
    GBU heuristic, exactly like a quarantined ``gtd-component`` task.
    """
    comp_edges = tuple(component.edges())
    executor.cache_component(comp_edges, component)
    answers: dict[frozenset[Edge], ProbabilisticGraph] = {}
    if resume_state is not None:
        visited = {frozenset(edges) for edges in resume_state["visited"]}
        frontier = [list(edges) for edges in resume_state["frontier"]]
        round_no = int(resume_state["round"])
    else:
        first = _canonical_edge_list(component)
        visited = {frozenset(first)}
        frontier = [first]
        round_no = 0
    if max_states is not None and len(visited) > max_states:
        raise DecompositionError(
            f"top-down search exceeded {max_states} explored states at k={k}"
        )
    while frontier:
        payloads = [
            (comp_edges, shard, k, gamma)
            for shard in _frontier_shards(frontier, executor.pool_workers)
        ]
        mark = len(getattr(executor, "quarantined", []))
        results = executor.map("gtd-frontier", payloads, progress=progress,
                               on_quarantine="skip")
        if any(res is QUARANTINED for res in results):
            # Honest degradation: some shard of this component's frontier
            # kept killing workers (or timing out). The exact search
            # cannot soundly skip states, so the whole component falls
            # back to the bottom-up heuristic — the same contract as a
            # quarantined gtd-component payload.
            for rec in getattr(executor, "quarantined", [])[mark:]:
                rec.fallback = "gbu"
            return None
        next_frontier: list[list[Edge]] = []
        for res in results:  # shard-index order
            for kind, data in res:  # within-shard candidate order
                if kind == "sat":
                    t = component.edge_subgraph([tuple(e) for e in data])
                    answers.setdefault(frozenset(t.edges()), t)
                    continue
                for succ in data:  # canonical generation order
                    key = frozenset(tuple(e) for e in succ)
                    if key in visited:
                        continue
                    visited.add(key)
                    if max_states is not None and len(visited) > max_states:
                        raise DecompositionError(
                            f"top-down search exceeded {max_states} "
                            f"explored states at k={k}"
                        )
                    next_frontier.append([tuple(e) for e in succ])
        frontier = next_frontier
        if progress is not None:
            from repro.runtime.progress import ProgressEvent

            # Emitted *after* the round is merged, carrying everything a
            # resumed run needs to continue from the next round — a hook
            # that raises here (checkpointing first, as the harness
            # chains them) loses no completed work.
            found_lists = [
                _canonical_edge_list(t)
                for t in list(level_found.values()) + list(answers.values())
            ]
            progress(ProgressEvent(
                "gtd-frontier", step=round_no,
                detail={
                    "k": k, "comp_index": comp_index,
                    "round": round_no + 1,
                    "found": found_lists,
                    "frontier": [list(c) for c in frontier],
                    # Outer sort keeps the snapshot canonical: `visited`
                    # is a set, whose iteration order must never leak
                    # into checkpoint bytes.
                    "visited": sorted(
                        (sorted(s, key=_edge_sort_key) for s in visited),
                        key=lambda st: [_edge_sort_key(e) for e in st],
                    ),
                    "states": len(visited),
                },
            ))
        round_no += 1
    return list(answers.values())


def bottom_up_search(
    oracle: GlobalTrussOracle,
    k: int,
    component: ProbabilisticGraph,
    gamma: float,
    rng: np.random.Generator | int | None = None,
    skip_covered: bool = True,
    seed_order: str = "probability-desc",
    progress=None,
    stream_root: int | None = None,
    comp_index: int = 0,
) -> list[ProbabilisticGraph]:
    """Algorithm 5: heuristic bottom-up growth of satisfying trusses.

    Seeds are the component's edges in descending probability order (the
    paper's heuristic; ``seed_order`` exposes "probability-asc" and
    "random" for ablation). Each seed grows by adding supporting
    triangles (k - 2 per deficient edge, chosen at random among the
    available apexes, as the paper prescribes); satisfying candidates
    are greedily extended to maximality. Incomplete by design — the
    speed-for-completeness trade of Section 5.3.

    With ``skip_covered`` (default), edges already contained in some
    answer are not re-seeded — every reported truss is still a satisfying
    maximal truss, the pass just avoids rediscovering the same answer
    from each of its edges.

    With ``stream_root`` (how the decomposition always calls this), each
    seed's growth draws from its own
    ``SeedSequence([stream_root, k, comp_index, seed_index])`` stream —
    the same streams :func:`_bottom_up_search_parallel` fans across
    workers, so the serial pass is byte-identical to every parallel
    worker count. Without it (direct API use), ``rng`` is one shared
    sequential stream threaded through all seeds.
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    answers: dict[frozenset[Edge], ProbabilisticGraph] = {}
    covered: set[Edge] = set()
    if seed_order == "probability-desc":
        ranked = sorted(
            component.edges_with_probabilities(),
            key=lambda t: (-t[2], str(t[0]), str(t[1])),
        )
    elif seed_order == "probability-asc":
        ranked = sorted(
            component.edges_with_probabilities(),
            key=lambda t: (t[2], str(t[0]), str(t[1])),
        )
    elif seed_order == "random":
        ranked = list(component.edges_with_probabilities())
        rng.shuffle(ranked)
    else:
        raise ParameterError(
            "seed_order must be 'probability-desc', 'probability-asc' "
            f"or 'random', got {seed_order!r}"
        )
    for seed_index, (u0, v0, _) in enumerate(ranked):
        if progress is not None:
            from repro.runtime.progress import ProgressEvent

            progress(ProgressEvent(
                "gbu-seed", step=seed_index, total=len(ranked),
                detail={"k": k},
            ))
        if skip_covered and edge_key(u0, v0) in covered:
            continue
        # alpha_hat(seed) can never exceed the seed's world frequency.
        if oracle.edge_frequency(u0, v0) < gamma * (1.0 - 1e-9):
            continue
        if stream_root is not None:
            seed_rng = np.random.default_rng(np.random.SeedSequence(
                [stream_root, k, comp_index, seed_index]
            ))
        else:
            seed_rng = rng
        grown = _grow_candidate(component, (u0, v0), k, seed_rng)
        if grown is None:
            continue
        if not oracle.satisfies(grown, k, gamma):
            continue
        extended = _extend_to_maximal(oracle, component, grown, k, gamma)
        key = frozenset(extended.edges())
        if key not in answers:
            answers[key] = extended
            covered |= key
    return list(answers.values())


def _bottom_up_search_parallel(
    executor,
    oracle: GlobalTrussOracle,
    k: int,
    comp_index: int,
    component: ProbabilisticGraph,
    gamma: float,
    root: int,
    progress=None,
) -> list[ProbabilisticGraph]:
    """Algorithm 5 with per-seed RNG streams, fanned across an executor.

    Each seed draws from its own stream
    ``SeedSequence([root, k, comp_index, seed_index])``, so its
    evaluation is a pure function of the seed — independent of worker
    count, scheduling, and chunk boundaries. Seeds are dispatched in
    chunks; covered-seed skipping happens twice: cheaply at dispatch
    (serial knowledge so far) and again at merge, in seed order, which
    discards exactly the evaluations the serial per-seed-stream pass
    would never have started. Results are therefore identical for any
    ``workers``, including the inline ``workers=1`` reference.
    """
    ranked = sorted(
        component.edges_with_probabilities(),
        key=lambda t: (-t[2], str(t[0]), str(t[1])),
    )
    comp_edges = tuple(component.edges())
    executor.cache_component(comp_edges, component)
    threshold = gamma * (1.0 - 1e-9)
    answers: dict[frozenset[Edge], ProbabilisticGraph] = {}
    covered: set[Edge] = set()
    chunk = max(1, executor.pool_workers * 2)
    total = len(ranked)
    index = 0
    while index < total:
        batch: list[tuple[int, Edge]] = []
        while index < total and len(batch) < chunk:
            u0, v0, _ = ranked[index]
            if progress is not None:
                from repro.runtime.progress import ProgressEvent

                progress(ProgressEvent(
                    "gbu-seed", step=index, total=total, detail={"k": k},
                ))
            seed_index = index
            index += 1
            if edge_key(u0, v0) in covered:
                continue
            # alpha_hat(seed) can never exceed the seed's world frequency.
            if oracle.edge_frequency(u0, v0) < threshold:
                continue
            batch.append((seed_index, (u0, v0)))
        if not batch:
            continue
        payloads = [
            (comp_edges, seed_edge, k, gamma, (root, k, comp_index, s_idx))
            for s_idx, seed_edge in batch
        ]
        results = executor.map("gbu-seed", payloads, progress=progress,
                               on_quarantine="skip")
        for (s_idx, seed_edge), res in zip(batch, results):
            if res is None or isinstance(res, str):
                continue
            if res is QUARANTINED:
                # Honest degradation: the seed's evaluation kept killing
                # workers, so its candidate truss (if any) is simply not
                # reported; the quarantine record in the PartialResult
                # names the seed.
                continue
            # Merge-order discard: a seed covered by an answer accepted
            # earlier in seed order was evaluated speculatively; dropping
            # it here reproduces the serial skip exactly.
            if edge_key(*seed_edge) in covered:
                continue
            truss = component.edge_subgraph(list(res))
            key = frozenset(truss.edges())
            if key not in answers:
                answers[key] = truss
                covered |= key
    return list(answers.values())


def _grow_candidate(
    component: ProbabilisticGraph,
    seed_edge: Edge,
    k: int,
    rng: np.random.Generator,
) -> ProbabilisticGraph | None:
    """Grow a candidate from ``seed_edge`` until every edge has support k - 2.

    Returns None when some edge's support cannot reach k - 2 using the
    component's triangles (the seed is then hopeless for this k).
    """
    u0, v0 = seed_edge
    candidate = component.edge_subgraph([(u0, v0)])
    pending = [(u0, v0)]
    while pending:
        u, v = pending.pop()
        if not candidate.has_edge(u, v):
            continue
        deficit = (k - 2) - candidate.support(u, v)
        if deficit <= 0:
            continue
        # Apexes available in the component but not yet forming a
        # triangle with (u, v) inside the candidate.
        in_candidate = candidate.common_neighbors(u, v)
        # Canonical order: common_neighbors returns a set, whose
        # iteration order varies with PYTHONHASHSEED — left unsorted,
        # rng.choice would pick different apexes in different processes,
        # breaking cross-process run reproducibility (and checkpoint
        # resume, which always happens in a fresh process).
        available = sorted(
            (w for w in component.common_neighbors(u, v)
             if w not in in_candidate),
            key=lambda w: (str(type(w).__name__), str(w)),
        )
        if len(available) < deficit:
            return None
        # Paper: when more than k - 2 triangles are available, pick k - 2
        # of them at random.
        chosen = list(
            rng.choice(np.array(available, dtype=object), size=deficit,
                       replace=False)
        ) if len(available) > deficit else available
        for w in chosen:
            for a, b in ((u, w), (v, w)):
                if not candidate.has_edge(a, b):
                    candidate.add_edge(a, b, component.probability(a, b))
                    pending.append((a, b))
        pending.append((u, v))
    return candidate


def _extend_to_maximal(
    oracle: GlobalTrussOracle,
    component: ProbabilisticGraph,
    candidate: ProbabilisticGraph,
    k: int,
    gamma: float,
) -> ProbabilisticGraph:
    """Greedily add adjacent component edges while the truss test still passes."""
    current_edges = [edge_key(u, v) for u, v in candidate.edges()]
    edge_set = set(current_edges)
    current_nodes = set(candidate.nodes())
    rejected: set[Edge] = set()
    need_support = k - 2
    improved = True
    while improved:
        improved = False
        fringe: list[tuple[Edge, float]] = []
        for u in list(current_nodes):
            for v in component.neighbors(u):
                e = edge_key(u, v)
                if e in edge_set or e in rejected:
                    continue
                rejected.add(e)  # provisional; removed again if accepted
                # Two sound prescreens, both upper bounds on the new
                # edge's alpha in any trial: its world frequency, and
                # (for k >= 3) whether it can even reach k - 2 triangles
                # within the trial's node set.
                if oracle.edge_frequency(*e) < gamma * (1.0 - 1e-9):
                    continue
                if need_support > 0:
                    apexes = sum(
                        1
                        for w in component.common_neighbors(e[0], e[1])
                        if w in current_nodes
                    )
                    if apexes < need_support:
                        continue
                fringe.append((e, component.probability(e[0], e[1])))
        # Try high-probability extensions first for a denser result.
        fringe.sort(key=lambda t: (-t[1], str(t[0][0]), str(t[0][1])))
        for e, _p in fringe:
            trial_nodes = current_nodes | {e[0], e[1]}
            if oracle.satisfies_edges(current_edges + [e], trial_nodes,
                                      k, gamma):
                current_edges.append(e)
                edge_set.add(e)
                current_nodes = trial_nodes
                rejected.discard(e)
                improved = True
            # Edges that failed stay in `rejected`: adding more edges
            # only makes the per-edge test harder in practice, so they
            # are not retried in later passes.
    return component.edge_subgraph(current_edges)


def global_truss_decomposition(
    graph: ProbabilisticGraph,
    gamma: float,
    epsilon: float = 0.1,
    delta: float = 0.1,
    method: str = "gbu",
    seed: int | np.random.Generator | None = None,
    n_samples: int | None = None,
    local_result: LocalTrussResult | None = None,
    samples: WorldSampleSet | None = None,
    max_k: int | None = None,
    max_states: int | None = None,
    progress=None,
    start_k: int = 2,
    initial_trusses: dict[int, list[ProbabilisticGraph]] | None = None,
    workers: int | str | None = None,
    executor=None,
    rng_root: int | None = None,
    frontier_state: dict | None = None,
) -> GlobalTrussResult:
    """Algorithm 3: find all maximal (eps, delta)-approximate global trusses.

    Parameters
    ----------
    graph:
        Input probabilistic graph.
    gamma:
        Probability threshold of Definition 3.
    epsilon, delta:
        Hoeffding accuracy parameters; the sample count is
        ``ceil(ln(2/delta) / (2 epsilon^2))`` unless ``n_samples``
        overrides it (the paper uses N = 150 for eps = delta = 0.1).
    method:
        ``"gtd"`` (Algorithm 4, exact w.r.t. the samples) or ``"gbu"``
        (Algorithm 5, heuristic).
    seed:
        RNG seed for world sampling and GBU tie-breaking.
    local_result:
        Optional precomputed local decomposition at the same gamma.
    samples:
        Optional pre-drawn world sample set (must cover ``graph``).
    max_k:
        Stop after this k even if candidates remain.
    max_states:
        GTD state budget per component (see :func:`top_down_search`).
    progress:
        Optional progress hook (see :mod:`repro.runtime.progress`),
        notified with ``"global-level"`` at the start of each k,
        ``"global-level-done"`` (carrying the level's trusses in
        ``detail``) after each k, and forwarded into the searches and
        the Monte-Carlo oracle. A hook that raises aborts the
        decomposition at that boundary.
    start_k, initial_trusses:
        Checkpoint-resume support: begin the k loop at ``start_k`` with
        ``initial_trusses`` (``{k: [trusses]}`` for every level below
        ``start_k``) taken as already computed. The default runs from
        scratch.
    workers, executor, rng_root:
        Parallel mode. ``workers`` (an int, 0 or ``"auto"``) spins up a
        private :class:`~repro.parallel.ParallelExecutor` for this call;
        ``executor`` supplies an externally managed one instead (the
        harness shares one across stages). Either switches GBU to
        *per-seed* RNG streams derived from ``rng_root`` (default: the
        int ``seed``, else one draw from the main stream) — results are
        then identical for every worker count, including ``workers=1``,
        but differ from the default sequential-stream mode. ``None``
        for all three (the default) is the unchanged serial behaviour.
        With an executor, exact GTD levels additionally use the
        intra-component frontier sharding of :func:`_frontier_search`
        whenever the level is a single component (or the executor is
        inline) — same bytes, parallel peel rounds.
    frontier_state:
        Mid-peel resume support (requires an executor): the snapshot of
        a ``"gtd-frontier"`` progress event's detail as restored by
        :meth:`~repro.runtime.checkpoint.CheckpointStore.load_frontier`.
        The level it names continues from that round boundary instead of
        restarting; a snapshot naming any other level is ignored.

    Returns
    -------
    GlobalTrussResult
        Maximal satisfying trusses per k. Every reported subgraph passes
        the per-edge ``alpha_hat >= gamma`` test against the shared
        sample set, hence is a maximal global (k, gamma +- eps)-truss
        with probability at least 1 - delta per edge (Theorem 3).
    """
    if not 0.0 <= gamma <= 1.0:
        raise ParameterError(f"gamma must be in [0, 1], got {gamma}")
    if method not in _METHODS:
        raise ParameterError(f"method must be one of {_METHODS}, got {method!r}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    if start_k < 2:
        raise ParameterError(f"start_k must be at least 2, got {start_k}")
    if start_k > 2 and initial_trusses is None:
        raise ParameterError(
            "resuming at start_k > 2 requires initial_trusses"
        )

    if n_samples is None:
        n_samples = hoeffding_sample_size(epsilon, delta)
    if samples is None:
        samples = WorldSampleSet.from_graph(graph, n_samples, seed=rng,
                                            progress=progress)
    oracle = GlobalTrussOracle(samples, progress=progress)

    own_executor = None
    if executor is None and workers is not None:
        from repro.parallel import ParallelExecutor

        own_executor = ParallelExecutor(
            workers, graph=graph, samples=samples
        ).start()
        executor = own_executor
    if executor is not None:
        executor.attach_oracle(oracle)
    if rng_root is not None:
        root = int(rng_root)
    elif isinstance(seed, int):
        root = seed
    else:
        # One draw from the main stream anchors every per-seed
        # stream of this run; Generator/None seeds are therefore
        # reproducible within a run but not across checkpoint
        # resume — the harness enforces an int seed there. Serial and
        # parallel modes derive the root identically (same rng state at
        # this point), which is what makes GBU output byte-identical
        # across workers in {None, 1, 2, 4, ...}.
        root = int(rng.integers(0, np.iinfo(np.int64).max))
    try:
        if local_result is None:
            local_result = local_truss_decomposition(
                graph, gamma, executor=executor
            )
        elif abs(local_result.gamma - gamma) > 1e-15:
            raise ParameterError(
                "local_result was computed for a different gamma "
                f"({local_result.gamma} != {gamma})"
            )
        return _decomposition_levels(
            graph, gamma, epsilon, delta, method, rng, samples, oracle,
            local_result, max_k, max_states, progress, start_k,
            initial_trusses, executor, root, frontier_state,
        )
    finally:
        if own_executor is not None:
            own_executor.close()


def _decomposition_levels(
    graph: ProbabilisticGraph,
    gamma: float,
    epsilon: float,
    delta: float,
    method: str,
    rng: np.random.Generator,
    samples: WorldSampleSet,
    oracle: GlobalTrussOracle,
    local_result: LocalTrussResult,
    max_k: int | None,
    max_states: int | None,
    progress,
    start_k: int,
    initial_trusses: dict[int, list[ProbabilisticGraph]] | None,
    executor,
    root: int,
    frontier_state: dict | None = None,
) -> GlobalTrussResult:
    """The Algorithm 3 k-loop, shared by the serial and parallel modes."""

    result = GlobalTrussResult(
        graph=graph, gamma=gamma, epsilon=epsilon, delta=delta,
        n_samples=samples.n_samples, method=method,
    )
    if initial_trusses:
        for level, trusses in initial_trusses.items():
            result.trusses[level] = list(trusses)

    if start_k == 2:
        # S_1 = all edges of G (Eq. 11's base case).
        prev_union: set[Edge] = {edge_key(u, v) for u, v in graph.edges()}
    else:
        prev_union = set()
        for t in result.trusses.get(start_k - 1, []):
            prev_union |= {edge_key(u, v) for u, v in t.edges()}
    k = start_k
    while prev_union:
        if max_k is not None and k > max_k:
            break
        if progress is not None:
            from repro.runtime.progress import ProgressEvent

            progress(ProgressEvent(
                "global-level", step=k, detail={"method": method},
            ))
        # Finished levels are never revisited: drop their memoised
        # evaluations (and the recomputable frequency memo) so the
        # oracle's footprint is bounded by one level, not the whole run.
        oracle.trim_level_cache(k)
        local_edges = {e for e, tau in local_result.trussness.items() if tau >= k}
        candidates = local_edges & prev_union
        candidates = _prune_to_structural_ktruss(graph, candidates, k)
        if not candidates:
            break
        found: dict[frozenset[Edge], ProbabilisticGraph] = {}
        pieces = _edge_subgraphs_of_components(graph, candidates)
        level_frontier = None
        if frontier_state is not None and int(frontier_state["k"]) == k:
            # One-shot: the snapshot belongs to exactly this level.
            level_frontier = frontier_state
            frontier_state = None
        if (method == "gtd" and executor is not None
                and executor.pool_workers > 1 and len(pieces) > 1):
            # Components are independent; search them concurrently and
            # merge in component order. top_down_search is deterministic,
            # so each worker's answer list matches a serial pass.
            payloads = [
                (tuple(piece.edges()), k, gamma, max_states)
                for piece in pieces
            ]
            mark = len(getattr(executor, "quarantined", []))
            results = executor.map("gtd-component", payloads,
                                   progress=progress,
                                   on_quarantine="skip")
            records = {
                rec.index: rec
                for rec in getattr(executor, "quarantined", [])[mark:]
            }
            for comp_index, (piece, res) in enumerate(zip(pieces, results)):
                if res is QUARANTINED:
                    # Honest degradation: the exact search on this
                    # component kept killing workers (or timing out);
                    # fall back to the bottom-up heuristic for just this
                    # component, exactly what `--method gbu` would run.
                    record = records.get(comp_index)
                    if record is not None:
                        record.fallback = "gbu"
                    trusses = _bottom_up_search_parallel(
                        executor, oracle, k, comp_index, piece, gamma,
                        root, progress=progress,
                    )
                    for t in trusses:
                        found.setdefault(frozenset(t.edges()), t)
                    continue
                for t_edges in res:
                    t = piece.edge_subgraph(list(t_edges))
                    found.setdefault(frozenset(t.edges()), t)
        elif method == "gtd" and executor is not None:
            # Intra-component parallelism: the level is one giant
            # component (the common case on the paper's real datasets)
            # or the executor is inline — shard each component's peel
            # rounds instead of fanning whole components.
            resume_comp = -1
            if level_frontier is not None:
                resume_comp = int(level_frontier["comp_index"])
                for t_edges in level_frontier["found"]:
                    t = graph.edge_subgraph(list(t_edges))
                    found.setdefault(frozenset(t.edges()), t)
            for comp_index, piece in enumerate(pieces):
                if comp_index < resume_comp:
                    # Fully searched before the snapshot; its answers
                    # were restored from the snapshot's `found` above.
                    continue
                trusses = _frontier_search(
                    executor, oracle, k, comp_index, piece, gamma,
                    max_states, progress, found,
                    resume_state=(level_frontier
                                  if comp_index == resume_comp else None),
                )
                if trusses is None:
                    # Quarantined frontier shard: this component degrades
                    # to the bottom-up heuristic (fallback recorded on
                    # the quarantine records by _frontier_search).
                    trusses = _bottom_up_search_parallel(
                        executor, oracle, k, comp_index, piece, gamma,
                        root, progress=progress,
                    )
                for t in trusses:
                    found.setdefault(frozenset(t.edges()), t)
        else:
            for comp_index, piece in enumerate(pieces):
                if method == "gtd":
                    trusses = top_down_search(oracle, k, piece, gamma,
                                              max_states=max_states,
                                              progress=progress)
                elif executor is not None:
                    trusses = _bottom_up_search_parallel(
                        executor, oracle, k, comp_index, piece, gamma,
                        root, progress=progress,
                    )
                else:
                    trusses = bottom_up_search(oracle, k, piece, gamma,
                                               rng=rng, progress=progress,
                                               stream_root=root,
                                               comp_index=comp_index)
                for t in trusses:
                    found.setdefault(frozenset(t.edges()), t)
        # Line 12: keep only the maximal answers.
        maximal = _filter_maximal(found)
        if not maximal:
            break
        result.trusses[k] = list(maximal.values())
        if progress is not None:
            from repro.runtime.progress import ProgressEvent

            # Emitted *after* the level is recorded: a hook that raises
            # here (budget, interrupt) loses no completed work, and a
            # checkpointing hook sees the finished level in ``detail``.
            progress(ProgressEvent(
                "global-level-done", step=k,
                detail={"k": k, "trusses": list(maximal.values()),
                        "method": method},
            ))
        prev_union = set().union(*maximal.keys())
        k += 1
    return result


def _filter_maximal(
    found: dict[frozenset[Edge], ProbabilisticGraph]
) -> dict[frozenset[Edge], ProbabilisticGraph]:
    """Drop answers whose edge set is a proper subset of another answer's."""
    keys = sorted(found, key=len, reverse=True)
    kept: dict[frozenset[Edge], ProbabilisticGraph] = {}
    for key in keys:
        if any(key < other for other in kept):
            continue
        kept[key] = found[key]
    return kept
