"""Expected-support truss semantics — the naive comparator.

An obvious-but-flawed way to extend trusses to probabilistic graphs is
to require *expected* support: every edge of H must satisfy
``E[sup_H(e)] >= k - 2``. The paper's local (k, gamma)-truss demands
probability mass instead (``Pr[sup >= k-2] >= gamma``), which
distinguishes one solid triangle from a hundred flimsy ones — the
expectation cannot. This module implements the naive semantics so the
difference can be measured (see the semantics ablation bench).

``E[sup(e)] = sum over common neighbours w of p(w,u) p(w,v)`` (linearity
of expectation; conditional on e existing), so the decomposition is a
max-min peel over real-valued supports, exactly like the gamma
decomposition's machinery.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Hashable

from repro.exceptions import ParameterError
from repro.graphs.components import edge_connected_components
from repro.graphs.probabilistic import ProbabilisticGraph, edge_key

__all__ = [
    "expected_support",
    "expected_truss_decomposition",
    "maximal_expected_trusses",
]

Node = Hashable
Edge = tuple[Node, Node]


def expected_support(graph: ProbabilisticGraph, u: Node, v: Node) -> float:
    """Return ``E[sup((u, v))]`` conditional on the edge existing."""
    return sum(
        graph.probability(w, u) * graph.probability(w, v)
        for w in graph.common_neighbors(u, v)
    )


def expected_truss_decomposition(
    graph: ProbabilisticGraph,
) -> dict[Edge, float]:
    """Return each edge's *expected trussness* ``tau_E(e)``.

    ``tau_E(e)`` is the largest real ``x`` such that e belongs to a
    connected subgraph in which every edge has expected support
    >= x - 2; the integer truss order achievable under expected-support
    semantics is ``floor(tau_E(e))``. Computed by max-min peeling on
    expected supports (updates are just subtractions — expectations are
    linear).
    """
    work = graph.copy()
    values: dict[Edge, float] = {}
    for u, v in work.edges():
        values[(u, v)] = expected_support(work, u, v)

    counter = itertools.count()
    heap = [(value, next(counter), e) for e, value in values.items()]
    heapq.heapify(heap)
    alive = set(values)
    result: dict[Edge, float] = {}
    running = 0.0
    while alive:
        value, _, e = heapq.heappop(heap)
        if e not in alive or value > values[e] + 1e-12:
            continue
        alive.discard(e)
        running = max(running, values[e])
        result[e] = running + 2.0
        u, v = e
        apexes = list(work.common_neighbors(u, v))
        for w in apexes:
            q_uw = work.probability(v, u) * work.probability(v, w)
            q_vw = work.probability(u, v) * work.probability(u, w)
            for other, q in ((edge_key(u, w), q_uw), (edge_key(v, w), q_vw)):
                if other in alive:
                    values[other] -= q
                    heapq.heappush(heap, (values[other], next(counter), other))
        work.remove_edge(u, v)
    return result


def maximal_expected_trusses(
    graph: ProbabilisticGraph, k: int,
    decomposition: dict[Edge, float] | None = None,
) -> list[ProbabilisticGraph]:
    """Maximal connected subgraphs with expected trussness >= ``k``."""
    if k < 2:
        raise ParameterError(f"k must be at least 2, got {k}")
    if decomposition is None:
        decomposition = expected_truss_decomposition(graph)
    survivors = [
        e for e, tau in decomposition.items() if tau >= k - 1e-9
    ]
    clusters = edge_connected_components(graph, survivors)
    return [graph.edge_subgraph(c) for c in clusters]
