"""The complete probabilistic truss frontier of a graph.

Section 7 of the paper leaves open how to decompose across *all* gamma
for a fixed k. :mod:`repro.core.gamma_decomp` answers that; this module
composes it across every feasible k into the full two-parameter
profile:

    frontier(e)[k] = gamma_k(e)
                   = the largest gamma such that e is in some local
                     (k, gamma)-truss,

for k = 2 .. k_struct_max. The frontier answers *any* (k, gamma) query
in O(1) per edge after one O(k_max) sweep of max-min peels, and exposes
the trade-off curve each edge lives on (how much probability mass it
must give up for one more unit of cohesion).

Frontier rows are non-increasing in k (a (k+1, gamma)-truss is a
(k, gamma)-truss), which the property tests pin down.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field

from repro.exceptions import ParameterError
from repro.graphs.components import edge_connected_components
from repro.graphs.probabilistic import ProbabilisticGraph, edge_key
from repro.core.gamma_decomp import gamma_truss_decomposition
from repro.truss.decomposition import truss_decomposition

__all__ = ["TrussFrontier", "truss_frontier"]

Node = Hashable
Edge = tuple[Node, Node]


@dataclass
class TrussFrontier:
    """Per-edge gamma-trussness across every feasible truss order k.

    Attributes
    ----------
    graph:
        The input probabilistic graph (unmodified).
    frontier:
        ``{edge: [g_2, g_3, ..., g_kmax]}`` where ``g_k`` is the edge's
        gamma-trussness at order k (index 0 holds k = 2). Rows are
        non-increasing.
    k_max:
        The largest structurally feasible truss order.
    """

    graph: ProbabilisticGraph
    frontier: dict[Edge, list[float]]
    k_max: int
    _structural: dict[Edge, int] = field(default_factory=dict, repr=False)

    def gamma_at(self, u: Node, v: Node, k: int) -> float:
        """Return ``gamma_k((u, v))`` (0.0 beyond the feasible range)."""
        if k < 2:
            raise ParameterError(f"k must be at least 2, got {k}")
        row = self.frontier[edge_key(u, v)]
        idx = k - 2
        return row[idx] if idx < len(row) else 0.0

    def trussness_at(self, u: Node, v: Node, gamma: float) -> int:
        """Return the local trussness of (u, v) at threshold ``gamma``.

        The largest k with ``gamma_k(e) >= gamma`` — matching
        Algorithm 1's tau(e) (1 when even k = 2 fails).
        """
        if not 0.0 < gamma <= 1.0:
            raise ParameterError(f"gamma must be in (0, 1], got {gamma}")
        row = self.frontier[edge_key(u, v)]
        threshold = gamma * (1.0 - 1e-9)
        best = 1
        for idx, value in enumerate(row):
            if value >= threshold:
                best = idx + 2
        return best

    def maximal_trusses(self, k: int, gamma: float) -> list[ProbabilisticGraph]:
        """Maximal local (k, gamma)-trusses straight from the frontier."""
        if k < 2:
            raise ParameterError(f"k must be at least 2, got {k}")
        if not 0.0 < gamma <= 1.0:
            raise ParameterError(f"gamma must be in (0, 1], got {gamma}")
        threshold = gamma * (1.0 - 1e-9)
        idx = k - 2
        survivors = [
            e for e, row in self.frontier.items()
            if idx < len(row) and row[idx] >= threshold
        ]
        clusters = edge_connected_components(self.graph, survivors)
        return [self.graph.edge_subgraph(c) for c in clusters]

    def edge_profile(self, u: Node, v: Node) -> list[tuple[int, float]]:
        """Return the (k, gamma_k) trade-off curve of one edge."""
        row = self.frontier[edge_key(u, v)]
        return [(k, g) for k, g in enumerate(row, start=2)]


def truss_frontier(graph: ProbabilisticGraph) -> TrussFrontier:
    """Compute the full (k, gamma) truss frontier of ``graph``.

    One max-min peel (:func:`gamma_truss_decomposition`) per feasible k;
    k ranges from 2 to the graph's *structural* k_max (beyond which
    every gamma-trussness is 0). Rows are clipped to be non-increasing
    in k, absorbing float dust at level boundaries.
    """
    structural = truss_decomposition(graph)
    k_max = max(structural.values(), default=0)
    frontier: dict[Edge, list[float]] = {
        edge_key(u, v): [] for u, v in graph.edges()
    }
    for k in range(2, k_max + 1):
        result = gamma_truss_decomposition(graph, k)
        for e, value in result.gamma_trussness.items():
            row = frontier[e]
            if row and value > row[-1]:
                value = row[-1]  # enforce monotonicity against dust
            row.append(value)
    return TrussFrontier(
        graph=graph, frontier=frontier, k_max=k_max,
        _structural=structural,
    )
