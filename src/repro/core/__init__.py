"""The paper's contribution: probabilistic truss decomposition.

* :mod:`repro.core.support_prob` — edge support probability vectors
  sigma(e) via the Algorithm 2 dynamic program and the Eq. (8)
  incremental update (plus a brute-force possible-world oracle).
* :mod:`repro.core.local` — Algorithm 1: local (k, gamma)-truss
  decomposition (DP and recompute-from-scratch baseline variants).
* :mod:`repro.core.global_truss` — alpha_k(H, e) exactly (Eq. 3) and by
  Monte-Carlo projection sampling (Eq. 10 / Theorem 3).
* :mod:`repro.core.global_decomp` — Algorithm 3 backbone with the
  top-down exact search GTD (Algorithm 4) and bottom-up heuristic GBU
  (Algorithm 5).
* :mod:`repro.core.pcore` — the (k, eta)-core of Bonchi et al. (KDD'14),
  the comparator of Section 6.4.
* :mod:`repro.core.metrics` — probabilistic density (Eq. 12) and
  probabilistic clustering coefficient (Eq. 13).
"""

from repro.core.support_prob import (
    SupportProbability,
    support_pmf,
    support_pmf_bruteforce,
    support_tail,
    triangle_probabilities,
)
from repro.core.local import (
    LocalTrussResult,
    local_truss_decomposition,
    maximal_local_trusses,
)
from repro.core.nucleus import (
    NucleusResult,
    nucleus_decomposition,
)
from repro.core.global_truss import (
    GlobalTrussOracle,
    alpha_exact,
    is_global_truss_exact,
)
from repro.core.global_decomp import (
    GlobalTrussResult,
    global_truss_decomposition,
    top_down_search,
    bottom_up_search,
)
from repro.core.gamma_decomp import (
    GammaTrussResult,
    gamma_truss_decomposition,
)
from repro.core.exact_enum import (
    enumerate_global_trusses,
    exact_global_decomposition,
)
from repro.core.expected import (
    expected_support,
    expected_truss_decomposition,
    maximal_expected_trusses,
)
from repro.core.frontier import TrussFrontier, truss_frontier
from repro.core.importance import ImportanceEstimate, alpha_importance
from repro.core.local_iterative import local_truss_decomposition_iterative
from repro.core.stats import (
    GraphProfile,
    degree_histogram,
    expected_triangle_count,
    probability_quantiles,
    profile_graph,
)
from repro.core.reliability import (
    network_reliability_exact,
    network_reliability_mc,
    theorem1_gadget,
    two_terminal_reliability_exact,
    two_terminal_reliability_mc,
)
from repro.core.pcore import (
    EtaDegree,
    eta_core_decomposition,
    eta_core_subgraph,
    max_eta_core_number,
)
from repro.core.metrics import (
    probabilistic_density,
    probabilistic_clustering_coefficient,
    clustering_coefficient,
)

__all__ = [
    "SupportProbability",
    "support_pmf",
    "support_pmf_bruteforce",
    "support_tail",
    "triangle_probabilities",
    "LocalTrussResult",
    "local_truss_decomposition",
    "maximal_local_trusses",
    "NucleusResult",
    "nucleus_decomposition",
    "GlobalTrussOracle",
    "alpha_exact",
    "is_global_truss_exact",
    "GlobalTrussResult",
    "global_truss_decomposition",
    "GammaTrussResult",
    "gamma_truss_decomposition",
    "enumerate_global_trusses",
    "exact_global_decomposition",
    "expected_support",
    "expected_truss_decomposition",
    "maximal_expected_trusses",
    "local_truss_decomposition_iterative",
    "TrussFrontier",
    "truss_frontier",
    "ImportanceEstimate",
    "alpha_importance",
    "network_reliability_exact",
    "network_reliability_mc",
    "theorem1_gadget",
    "two_terminal_reliability_exact",
    "two_terminal_reliability_mc",
    "GraphProfile",
    "degree_histogram",
    "expected_triangle_count",
    "probability_quantiles",
    "profile_graph",
    "top_down_search",
    "bottom_up_search",
    "EtaDegree",
    "eta_core_decomposition",
    "eta_core_subgraph",
    "max_eta_core_number",
    "probabilistic_density",
    "probabilistic_clustering_coefficient",
    "clustering_coefficient",
]
