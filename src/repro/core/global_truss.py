"""Global (k, gamma)-truss semantics: alpha_k(H, e) exactly and by sampling.

``alpha_k(H, e)`` (Eq. 3) is the probability that a possible world of the
probabilistic subgraph ``H`` is a *connected deterministic k-truss
spanning all of V_H* and containing edge ``e``. Computing it exactly is
#P-hard (Theorem 1); this module provides:

* :func:`alpha_exact` — exponential possible-world enumeration, usable as
  a ground-truth oracle on small subgraphs;
* :class:`GlobalTrussOracle` — the Monte-Carlo estimator of Eq. (10)
  backed by a shared :class:`~repro.graphs.sampling.WorldSampleSet`
  projected onto each candidate subgraph (Theorem 3 justifies sharing
  one sample set across all candidates).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable, Sequence

import numpy as np

from repro.core import kernels
from repro.core.kernels import WorldClassifier as _WorldClassifier
from repro.exceptions import ParameterError
from repro.graphs.probabilistic import ProbabilisticGraph, edge_key
from repro.graphs.sampling import WorldSampleSet

__all__ = [
    "world_is_connected_ktruss",
    "alpha_exact",
    "is_global_truss_exact",
    "classify_worlds",
    "GlobalTrussOracle",
]

Node = Hashable
Edge = tuple[Node, Node]

# alpha_exact enumerates 2^m worlds; refuse beyond this many edges.
_MAX_EXACT_EDGES = 25


def world_is_connected_ktruss(
    nodes: Iterable[Node], present_edges: Iterable[Edge], k: int
) -> bool:
    """Return True iff the world (nodes, present_edges) is a connected k-truss.

    The world must (a) connect **all** of ``nodes`` — possible worlds
    retain every node of their parent graph — and (b) be a deterministic
    k-truss: every present edge lies in at least k - 2 triangles among
    the present edges. This is the indicator ``I(H, k, e)`` of
    Definition 3 minus the "contains e" clause, which callers apply by
    crediting only present edges.
    """
    if k < 2:
        raise ParameterError(f"k must be at least 2, got {k}")
    node_list = list(nodes)
    edge_list = list(present_edges)
    adj: dict[Node, set[Node]] = {u: set() for u in node_list}
    for u, v in edge_list:
        adj[u].add(v)
        adj[v].add(u)
    if not node_list:
        return False
    # Connectivity over ALL nodes of the subgraph.
    seen = {node_list[0]}
    queue = deque(seen)
    while queue:
        u = queue.popleft()
        for v in adj[u]:
            if v not in seen:
                seen.add(v)
                queue.append(v)
    if len(seen) != len(node_list):
        return False
    # k-truss condition on the present edges.
    need = k - 2
    if need <= 0:
        return True
    return all(len(adj[u] & adj[v]) >= need for u, v in edge_list)


def alpha_exact(
    subgraph: ProbabilisticGraph, k: int
) -> dict[Edge, float]:
    """Return exact ``alpha_k(H, e)`` for every edge ``e`` of ``subgraph``.

    Enumerates all 2^m possible worlds (Eq. 3); raises
    :class:`ParameterError` beyond ``25`` edges. For each qualifying
    world — connected over all of V_H and a k-truss — its probability is
    credited to every edge it contains.
    """
    edges = list(subgraph.edges())
    m = len(edges)
    if m > _MAX_EXACT_EDGES:
        raise ParameterError(
            f"alpha_exact enumerates 2^m worlds; {m} edges exceeds the "
            f"limit of {_MAX_EXACT_EDGES}"
        )
    probs = [subgraph.probability(u, v) for u, v in edges]
    nodes = list(subgraph.nodes())
    alpha = {e: 0.0 for e in edges}
    for mask in range(1 << m):
        world_prob = 1.0
        present: list[Edge] = []
        for i in range(m):
            if mask >> i & 1:
                world_prob *= probs[i]
                present.append(edges[i])
            else:
                world_prob *= 1.0 - probs[i]
        if world_prob == 0.0 or not present:
            continue
        if world_is_connected_ktruss(nodes, present, k):
            for e in present:
                alpha[e] += world_prob
    return alpha


def is_global_truss_exact(
    subgraph: ProbabilisticGraph, k: int, gamma: float
) -> bool:
    """Exact Definition 3 check: every edge has ``alpha_k(H, e) >= gamma``.

    Connectivity of the (structural) subgraph is required as well. Only
    feasible on small subgraphs — see :func:`alpha_exact`.
    """
    if not 0.0 <= gamma <= 1.0:
        raise ParameterError(f"gamma must be in [0, 1], got {gamma}")
    from repro.graphs.components import is_connected

    if subgraph.number_of_edges() == 0 or not is_connected(subgraph):
        return False
    alpha = alpha_exact(subgraph, k)
    # Relative slack absorbs floating-point dust at exact-threshold cases.
    threshold = gamma * (1.0 - 1e-9)
    return all(a >= threshold for a in alpha.values())


def classify_worlds(
    edges: Sequence[Edge], nodes: Sequence[Node], k: int,
    matrix: np.ndarray, candidate_rows: np.ndarray,
) -> dict[Edge, int]:
    """Count qualifying worlds containing each edge (exact w.r.t. samples).

    ``matrix`` is the full ``(N, m)`` projected presence matrix of the
    candidate and ``candidate_rows`` the row indices to classify.
    Sampled worlds of a candidate often repeat the same presence pattern
    (high-probability candidates are dominated by the all-edges world),
    so identical rows are classified once and credited with their
    multiplicity.

    Counts are additive over disjoint row sets — the property the
    parallel oracle uses to classify row blocks in worker processes and
    sum the integer counts with no change in the result.

    This boolean-matrix path is the *differential-test reference* for
    :func:`repro.core.kernels.classify_worlds_packed`, which computes
    identical counts directly on the packed bits; the oracle's hot paths
    use the packed kernel and never materialise ``matrix``.
    """
    edges = list(edges)
    counts = {e: 0 for e in edges}
    if candidate_rows.size == 0:
        return counts
    classifier = _WorldClassifier(edges, list(nodes), k)
    sub = matrix[candidate_rows]
    if len(edges) <= 48:
        patterns, multiplicity = np.unique(sub, axis=0, return_counts=True)
    else:
        patterns, multiplicity = sub, np.ones(sub.shape[0], dtype=np.int64)
    qualifying = classifier.connected_mask(patterns)
    if k > 2:
        for i in np.flatnonzero(qualifying):
            if not classifier.truss_ok(np.flatnonzero(patterns[i])):
                qualifying[i] = False
    if qualifying.any():
        counts_vec = patterns[qualifying].astype(np.int64).T @ (
            multiplicity[qualifying].astype(np.int64)
        )
        counts = {e: int(counts_vec[j]) for j, e in enumerate(edges)}
    return counts


def _minimum_world_edges(n_nodes: int, k: int) -> int:
    """Lower bound on |E| of any qualifying world on ``n_nodes`` nodes.

    A qualifying world connects all nodes (>= n - 1 edges) and is a
    k-truss with at least one edge, so every node has degree >= k - 1
    (>= ceil(n (k-1) / 2) edges).
    """
    return max(n_nodes - 1, -(-n_nodes * (k - 1)) // 2, 1)


class GlobalTrussOracle:
    """Monte-Carlo estimator of alpha_k over a shared world sample set.

    One oracle wraps the ``N`` sampled worlds of the *host* graph; every
    candidate subgraph is evaluated against their projections (Eq. 10).
    Estimates for a given (edge set, node set, k) are memoised — the
    searches of Algorithms 4 and 5 revisit subgraphs heavily.

    The hot path, :meth:`satisfies_edges`, avoids materialising subgraph
    objects and short-circuits with two sound upper bounds before the
    per-world classification loop: a world-size filter (a qualifying
    world needs at least ``max(n - 1, n (k-1) / 2)`` edges) and a
    per-edge count bound (``alpha_hat(e) * N`` cannot exceed the number
    of size-qualified worlds containing ``e``). Both bounds, and the
    classification itself, run on the bit-packed presence columns via
    :mod:`repro.core.kernels` — the full boolean projection is never
    materialised.
    """

    #: Candidate evaluations between progress-hook notifications; the
    #: finest-grained cancellation point inside a GTD/GBU level.
    _PROGRESS_INTERVAL = 32

    #: Minimum classification size (candidate rows x edges) before a
    #: single evaluation is split across worker processes. Below this the
    #: serial classifier beats the dispatch round-trip. This constant is
    #: the *fallback*: an attached executor that measured its actual
    #: dispatch cost at startup overrides it via ``parallel_min_cells``.
    _PARALLEL_MIN_CELLS = 1 << 17

    #: Memoised evaluations kept before the oldest are evicted. Worker
    #: processes never see the per-level trim (they outlive levels), so
    #: the cache itself must be bounded; eviction only costs recompute,
    #: never changes a result.
    _CACHE_MAX = 8192

    def __init__(self, samples: WorldSampleSet, progress=None, executor=None):
        self._samples = samples
        self._cache: dict[tuple[frozenset[Edge], frozenset[Node], int],
                          dict[Edge, float]] = {}
        self._frequency: dict[Edge, float] = {}
        self._progress = progress
        self._evaluations = 0
        #: Optional :class:`repro.parallel.ParallelExecutor`; when it has
        #: live worker processes, single large evaluations are split into
        #: disjoint sample-row blocks classified in parallel (integer
        #: counts are additive over row blocks, so results are identical).
        self.executor = executor

    def _tick(self) -> None:
        """Emit an ``oracle-eval`` event every few candidate evaluations."""
        self._evaluations += 1
        if self._progress is None or (
                self._evaluations % self._PROGRESS_INTERVAL):
            return
        from repro.runtime.progress import ProgressEvent

        self._progress(ProgressEvent("oracle-eval", step=self._evaluations))

    @property
    def n_samples(self) -> int:
        """The number of sampled worlds N."""
        return self._samples.n_samples

    def edge_frequency(self, u: Node, v: Node) -> float:
        """Fraction of sampled worlds containing edge (u, v), memoised.

        This is a sound upper bound on ``alpha_hat_k(H, e)`` for any
        candidate ``H`` — used by the searches to discard hopeless edges
        without a full evaluation. Computed by popcount on the packed
        column; the memo is bounded by the host graph's edge count and
        dropped with the per-level trim (:meth:`trim_level_cache`).
        """
        key = edge_key(u, v)
        freq = self._frequency.get(key)
        if freq is None:
            freq = self._samples.edge_frequency(u, v)
            self._frequency[key] = freq
        return freq

    def trim_level_cache(self, k: int) -> int:
        """Drop memoised evaluations from levels other than ``k``.

        The decomposition's k-loop never revisits a finished level, but
        the memo keys carry their k, so without this trim the cache (and
        the per-edge frequency memo) grows monotonically across levels —
        the unbounded-growth bug this call fixes. Returns the number of
        evaluations dropped. Dropping only costs recompute on a stale
        hit; results are unaffected.
        """
        stale = [key for key in self._cache if key[2] != k]
        for key in stale:
            del self._cache[key]
        self._frequency.clear()
        return len(stale)

    # ------------------------------------------------------------------
    def _remember(self, key, estimates: dict[Edge, float]) -> None:
        """Memoise an evaluation, evicting oldest beyond the size bound."""
        while len(self._cache) >= self._CACHE_MAX:
            self._cache.pop(next(iter(self._cache)))
        self._cache[key] = estimates

    def _classify(
        self, edges: list[Edge], nodes: list[Node], k: int,
        packed: np.ndarray, candidate_rows: np.ndarray,
    ) -> dict[Edge, int]:
        return kernels.classify_worlds_packed(
            edges, nodes, k, packed, candidate_rows
        )

    def _parallel_min_cells(self) -> int:
        """The dispatch threshold: calibrated by the executor, else fixed."""
        calibrated = getattr(self.executor, "parallel_min_cells", None)
        return self._PARALLEL_MIN_CELLS if calibrated is None else calibrated

    def _parallel_worthwhile(self, n_edges: int, n_rows: int) -> bool:
        return (
            self.executor is not None
            and getattr(self.executor, "pool_workers", 1) > 1
            and n_edges * n_rows >= self._parallel_min_cells()
        )

    def _parallel_counts(
        self, edges: list[Edge], nodes: list[Node], k: int,
        packed: np.ndarray, candidate_rows: np.ndarray,
    ) -> tuple[dict[Edge, int], int]:
        """Classify row blocks in worker processes and sum the counts.

        The parent projects the packed columns *once* and ships each
        worker only the byte rows its sample-row block touches — workers
        never re-project (the old per-block ``presence_matrix`` call
        paid the full projection once per worker) and never unpack
        beyond their own partial rows.

        Returns ``(totals, denominator)``. A block whose payload was
        quarantined by the supervision layer contributes nothing to the
        totals and its rows leave the denominator — the estimate then
        reads over the ``N - rows_lost`` samples actually classified,
        exactly like truncated sampling, and the executor records the
        loss so the harness can widen the reported epsilon.
        """
        from repro.parallel.supervisor import QUARANTINED

        blocks = np.array_split(candidate_rows, self.executor.pool_workers)
        payloads = []
        for block in blocks:
            if not block.size:
                continue
            # Byte-aligned slice covering this block's sample rows; the
            # block's row indices become relative to the slice start.
            byte_lo = int(block[0]) >> 3
            byte_hi = (int(block[-1]) >> 3) + 1
            payloads.append((
                list(edges), list(nodes), k,
                np.ascontiguousarray(packed[byte_lo:byte_hi]),
                block - (byte_lo << 3),
            ))
        results = self.executor.map(
            "oracle-block", payloads, progress=self._progress,
            on_quarantine="skip",
        )
        totals = {e: 0 for e in edges}
        rows_lost = 0
        for payload, counts in zip(payloads, results):
            if counts is QUARANTINED:
                rows_lost += len(payload[4])
                continue
            for e, c in zip(edges, counts):
                totals[e] += c
        if rows_lost:
            self.executor.note_sample_loss(rows_lost)
        return totals, max(self._samples.n_samples - rows_lost, 0)

    def alpha_estimates(
        self, subgraph: ProbabilisticGraph, k: int
    ) -> dict[Edge, float]:
        """Return ``{e: alpha_hat_k(H, e)}`` for every edge of ``subgraph``.

        Each projected world is classified once (connected-spanning +
        k-truss); qualifying worlds credit every edge they contain, so
        the cost per candidate is O(N * world size).
        """
        edges = [edge_key(u, v) for u, v in subgraph.edges()]
        nodes = list(subgraph.nodes())
        return self._estimates(edges, nodes, k)

    def _estimates(
        self, edges: list[Edge], nodes: list[Node], k: int
    ) -> dict[Edge, float]:
        key = (frozenset(edges), frozenset(nodes), k)
        cached = self._cache.get(key)
        if cached is not None:
            return dict(cached)
        counts: dict[Edge, int] = {e: 0 for e in edges}
        denominator = self._samples.n_samples
        if edges:
            packed = self._samples.packed_columns(edges)
            row_sums = kernels.row_sums(packed, denominator)
            candidate_rows = np.flatnonzero(
                row_sums >= _minimum_world_edges(len(nodes), k)
            )
            if self._parallel_worthwhile(len(edges), candidate_rows.size):
                counts, denominator = self._parallel_counts(
                    edges, nodes, k, packed, candidate_rows
                )
            else:
                counts = self._classify(
                    edges, nodes, k, packed, candidate_rows
                )
        if denominator > 0:
            estimates = {e: c / denominator for e, c in counts.items()}
        else:
            estimates = {e: 0.0 for e in edges}
        self._remember(key, estimates)
        return dict(estimates)

    def satisfies(
        self, subgraph: ProbabilisticGraph, k: int, gamma: float
    ) -> bool:
        """Return True iff ``subgraph`` is an (eps, delta)-approximate
        global (k, gamma)-truss w.r.t. the sample set: every edge has
        ``alpha_hat >= gamma`` (and the subgraph is non-empty)."""
        edges = [edge_key(u, v) for u, v in subgraph.edges()]
        nodes = list(subgraph.nodes())
        return self.satisfies_edges(edges, nodes, k, gamma)

    def satisfies_edges(
        self, edges: Sequence[Edge], nodes: Iterable[Node],
        k: int, gamma: float,
    ) -> bool:
        """:meth:`satisfies` on a raw (edges, nodes) pair — the hot path.

        ``edges`` must be canonical keys; ``nodes`` must cover every edge
        endpoint. Fast-rejects via upper bounds before classifying.
        """
        if not 0.0 <= gamma <= 1.0:
            raise ParameterError(f"gamma must be in [0, 1], got {gamma}")
        edges = list(edges)
        if not edges:
            return False
        self._tick()
        node_list = list(nodes)
        threshold = gamma * (1.0 - 1e-9)
        key = (frozenset(edges), frozenset(node_list), k)
        cached = self._cache.get(key)
        if cached is not None:
            return all(a >= threshold for a in cached.values())

        needed = threshold * self._samples.n_samples
        packed = self._samples.packed_columns(edges)
        row_sums = kernels.row_sums(packed, self._samples.n_samples)
        candidate_rows = np.flatnonzero(
            row_sums >= _minimum_world_edges(len(node_list), k)
        )
        # Upper bound: qualifying worlds containing e are a subset of the
        # size-qualified worlds containing e. Reject without classifying
        # when some edge cannot reach the threshold. (Sound only as a
        # False fast-path; estimates are NOT cached here.)
        if candidate_rows.size * 1.0 < needed:
            return False
        candidate_mask = kernels.pack_row_mask(
            row_sums >= _minimum_world_edges(len(node_list), k)
        )
        upper = kernels.masked_column_counts(packed, candidate_mask)
        if (upper < needed).any():
            return False
        if self._parallel_worthwhile(len(edges), candidate_rows.size):
            # Full counts over disjoint row blocks: the serial early-exit
            # below is a sound False fast-path, so completing the count
            # yields the same boolean (and the same cached estimates as a
            # completed serial pass).
            counts, denominator = self._parallel_counts(
                edges, node_list, k, packed, candidate_rows
            )
            if denominator > 0:
                estimates = {e: counts[e] / denominator for e in edges}
            else:
                estimates = {e: 0.0 for e in edges}
            self._remember(key, estimates)
            return all(a >= threshold for a in estimates.values())
        # One batched C-level connectivity pass over all unique patterns,
        # then (for k >= 3 only) per-pattern truss checks, heaviest
        # first, with a live per-edge bound achieved(e) + pending(e) for
        # early rejection. Pattern dedup happens in the packed domain:
        # all-edges-present rows are counted by popcount of the byte
        # AND-mask and only partial rows are gathered/unpacked.
        classifier = _WorldClassifier(edges, node_list, k)
        patterns, multiplicity = kernels.dedup_candidate_patterns(
            packed, candidate_rows
        )
        weights = multiplicity.astype(float)
        connected = classifier.connected_mask(patterns)
        if k <= 2:
            if not connected.any():
                return False
            achieved = patterns[connected].astype(float).T @ weights[connected]
        else:
            survivors = np.flatnonzero(connected)
            if survivors.size == 0:
                return False
            pending = patterns[survivors].astype(float).T @ weights[survivors]
            if (pending < needed).any():
                return False
            achieved = np.zeros(len(edges))
            order = survivors[np.argsort(-weights[survivors])]
            for idx in order:
                contribution = weights[idx] * patterns[idx]
                pending -= contribution
                if classifier.truss_ok(np.flatnonzero(patterns[idx])):
                    achieved += contribution
                if ((achieved + pending) < needed).any():
                    return False
        estimates = {
            e: achieved[j] / self._samples.n_samples
            for j, e in enumerate(edges)
        }
        self._remember(key, estimates)
        return all(a >= threshold for a in estimates.values())

    def cache_size(self) -> int:
        """Number of memoised (edge set, node set, k) evaluations."""
        return len(self._cache)

    def clear_cache(self) -> None:
        """Drop all memoised evaluations."""
        self._cache.clear()
