"""Local truss decomposition by asynchronous fixpoint iteration.

The peeling of Algorithm 1 is inherently sequential — each removal
feeds the next. This module computes the same local trussness map with
*local updates only*, the probabilistic analogue of h-index-iteration
core/truss decomposition:

Maintain an upper bound ``t(e)`` on every edge's trussness (initialised
to its level against the full neighbourhood). Repeatedly refine:

    t(e)  <-  max k such that  sigma_k(e) * p(e) >= gamma,  where
    sigma_k counts only triangles whose OTHER two edges both currently
    have bound >= k.

Each refinement uses only `e`'s triangles, bounds are non-increasing
integers, and the fixpoint equals Algorithm 1's trussness exactly
(verified edge-for-edge in the test suite). Because updates commute,
the scheme suits parallel / out-of-core / vertex-centric settings where
a global peel is awkward — the same motivation as the paper's cited
external-memory and MapReduce truss work.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable

from repro.exceptions import ParameterError
from repro.graphs.probabilistic import ProbabilisticGraph, edge_key
from repro.core.support_prob import support_pmf, support_tail

__all__ = ["local_truss_decomposition_iterative"]

Node = Hashable
Edge = tuple[Node, Node]


def _best_level(
    graph: ProbabilisticGraph,
    e: Edge,
    bounds: dict[Edge, int],
    gamma: float,
) -> int:
    """Largest k with sigma_k(e) * p(e) >= gamma under current bounds.

    A triangle with apex w counts towards level k iff both co-edges'
    current bounds are >= k. Since raising k only removes triangles,
    scan k downward from the current bound, rebuilding the PMF only when
    the eligible triangle set changes.
    """
    u, v = e
    p_edge = graph.probability(u, v)
    threshold = gamma * (1.0 - 1e-9)
    if p_edge < threshold:
        return 1
    current = bounds[e]
    if current <= 2:
        return 2

    # Triangles sorted by the co-edge bound that limits them.
    limits: list[tuple[int, float]] = []
    for w in graph.common_neighbors(u, v):
        limit = min(bounds[edge_key(u, w)], bounds[edge_key(v, w)])
        q = graph.probability(w, u) * graph.probability(w, v)
        limits.append((limit, q))

    for k in range(current, 2, -1):
        qs = [q for limit, q in limits if limit >= k]
        if len(qs) < k - 2:
            continue
        sigma = support_tail(support_pmf(qs))
        if sigma[k - 2] * p_edge >= threshold:
            return k
    return 2


def local_truss_decomposition_iterative(
    graph: ProbabilisticGraph, gamma: float
) -> dict[Edge, int]:
    """Compute local trussness by work-list fixpoint iteration.

    Returns the same ``{edge: tau(e)}`` map as
    :func:`repro.core.local.local_truss_decomposition` (whose
    ``LocalTrussResult`` wrapper can be built from it if needed).
    """
    if not 0.0 <= gamma <= 1.0:
        raise ParameterError(f"gamma must be in [0, 1], got {gamma}")
    bounds: dict[Edge, int] = {}
    for u, v, p in graph.edges_with_probabilities():
        e = (u, v)
        qs = [
            graph.probability(w, u) * graph.probability(w, v)
            for w in graph.common_neighbors(u, v)
        ]
        sigma = support_tail(support_pmf(qs))
        threshold = gamma * (1.0 - 1e-9)
        if p < threshold:
            bounds[e] = 1
            continue
        level = 2
        for t in range(len(sigma) - 1, 0, -1):
            if sigma[t] * p >= threshold:
                level = t + 2
                break
        bounds[e] = level

    pending = deque(bounds)
    in_queue = set(bounds)
    while pending:
        e = pending.popleft()
        in_queue.discard(e)
        if bounds[e] <= 2:
            continue
        new_bound = _best_level(graph, e, bounds, gamma)
        if new_bound < bounds[e]:
            bounds[e] = new_bound
            u, v = e
            for w in graph.common_neighbors(u, v):
                for other in (edge_key(u, w), edge_key(v, w)):
                    if bounds.get(other, 0) > 2 and other not in in_queue:
                        pending.append(other)
                        in_queue.add(other)
    return bounds
