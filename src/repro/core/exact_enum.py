"""Exhaustive global (k, gamma)-truss enumeration for small graphs.

GLOBALDECOMP's answers can be exponential (Lemma 2) and even a single
alpha evaluation is #P-hard (Theorem 1) — but on *small* graphs both are
brute-forceable, and that is exactly what tests and ablations need: a
ground-truth oracle against which GTD (exact w.r.t. samples) and GBU
(heuristic) can be judged.

:func:`exact_global_decomposition` enumerates candidate edge-subsets in
decreasing size, checks each against the exact Definition 3 (via
:func:`~repro.core.global_truss.alpha_exact`), and keeps the maximal
satisfying subgraphs. Search-space reduction uses only *sound* pruning:

* candidates are restricted to edges of the structural k-truss —
  an edge outside it has alpha = 0 in every subgraph;
* candidates must be edge-connected (Definition 3 requires structural
  connectivity);
* supersets of already-accepted answers are impossible by the
  decreasing-size enumeration order, so maximality is by construction.
"""

from __future__ import annotations

from collections.abc import Hashable
from itertools import combinations

from repro.exceptions import ParameterError
from repro.graphs.components import is_connected
from repro.graphs.probabilistic import ProbabilisticGraph, edge_key
from repro.core.global_truss import alpha_exact
from repro.core.global_decomp import _prune_to_structural_ktruss

__all__ = ["exact_global_decomposition", "enumerate_global_trusses"]

Node = Hashable
Edge = tuple[Node, Node]

#: Enumerating subsets AND each subset's worlds costs Theta(3^m) in
#: total; refuse beyond this candidate size.
_MAX_ENUM_EDGES = 14


def enumerate_global_trusses(
    graph: ProbabilisticGraph, k: int, gamma: float
) -> list[ProbabilisticGraph]:
    """Return ALL maximal global (k, gamma)-trusses of ``graph``, exactly.

    Exponential in the structural k-truss size; raises
    :class:`ParameterError` beyond 14 candidate edges. Intended as a test
    oracle and for paper-style constructions (windmills, gadgets).
    """
    if k < 2:
        raise ParameterError(f"k must be at least 2, got {k}")
    if not 0.0 < gamma <= 1.0:
        raise ParameterError(f"gamma must be in (0, 1], got {gamma}")

    all_edges = {edge_key(u, v) for u, v in graph.edges()}
    candidate_edges = sorted(
        _prune_to_structural_ktruss(graph, all_edges, k), key=str
    )
    m = len(candidate_edges)
    if m > _MAX_ENUM_EDGES:
        raise ParameterError(
            f"exact enumeration needs <= {_MAX_ENUM_EDGES} candidate "
            f"edges, got {m}"
        )

    threshold = gamma * (1.0 - 1e-9)
    answers: list[frozenset[Edge]] = []
    results: list[ProbabilisticGraph] = []
    for size in range(m, 0, -1):
        for combo in combinations(candidate_edges, size):
            key = frozenset(combo)
            if any(key <= found for found in answers):
                continue  # subset of an existing answer: not maximal
            subgraph = graph.edge_subgraph(combo)
            if not is_connected(subgraph):
                continue
            alpha = alpha_exact(subgraph, k)
            if all(a >= threshold for a in alpha.values()):
                answers.append(key)
                results.append(subgraph)
    return results


def exact_global_decomposition(
    graph: ProbabilisticGraph, gamma: float, max_k: int | None = None
) -> dict[int, list[ProbabilisticGraph]]:
    """Return ``{k: all maximal global (k, gamma)-trusses}``, exactly.

    Enumerates k = 2 upward until no satisfying truss remains (the
    monotonicity of global trusses w.r.t. k guarantees termination).
    Same size limits as :func:`enumerate_global_trusses`.
    """
    if not 0.0 < gamma <= 1.0:
        raise ParameterError(f"gamma must be in (0, 1], got {gamma}")
    out: dict[int, list[ProbabilisticGraph]] = {}
    k = 2
    while True:
        if max_k is not None and k > max_k:
            break
        trusses = enumerate_global_trusses(graph, k, gamma)
        if not trusses:
            break
        out[k] = trusses
        k += 1
    return out
