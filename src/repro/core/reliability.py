"""Network reliability — the #P-hard quantity behind Theorem 1.

Theorem 1 reduces NETWORK RELIABILITY (the probability that a
probabilistic graph is connected, Eq. 4) to computing
``alpha_2(H, e)``: attach a pendant node ``w`` to any vertex ``v`` with
a certain edge, and the 2-truss alpha of ``(w, v)`` equals the original
graph's reliability. This module provides the quantity itself —

* :func:`network_reliability_exact` — possible-world enumeration
  (graphs up to 22 edges);
* :func:`network_reliability_mc` — Monte-Carlo over a
  :class:`~repro.graphs.sampling.WorldSampleSet` with the same Hoeffding
  guarantees as the truss oracle;
* :func:`two_terminal_reliability_exact` / ``_mc`` — the classical s-t
  variant (Jin et al.'s distance-constraint reachability with an
  infinite threshold);
* :func:`theorem1_gadget` — builds the reduction instance, letting
  tests confirm ``alpha_2(gadget, pendant) == reliability`` exactly.
"""

from __future__ import annotations

from collections.abc import Hashable

import numpy as np

from repro.exceptions import NodeNotFoundError, ParameterError
from repro.graphs.components import component_of, is_connected
from repro.graphs.probabilistic import ProbabilisticGraph, edge_key
from repro.graphs.sampling import WorldSampleSet

__all__ = [
    "count_connected_rows",
    "network_reliability_exact",
    "network_reliability_mc",
    "two_terminal_reliability_exact",
    "two_terminal_reliability_mc",
    "theorem1_gadget",
]

Node = Hashable
Edge = tuple[Node, Node]

_MAX_EXACT_EDGES = 22


def _world_connects(nodes: list[Node], present: list[Edge]) -> bool:
    adj: dict[Node, set[Node]] = {u: set() for u in nodes}
    for u, v in present:
        adj[u].add(v)
        adj[v].add(u)
    if not nodes:
        return False
    seen = {nodes[0]}
    stack = [nodes[0]]
    while stack:
        x = stack.pop()
        for y in adj[x]:
            if y not in seen:
                seen.add(y)
                stack.append(y)
    return len(seen) == len(nodes)


def count_connected_rows(nodes: list[Node], edges: list[Edge],
                         presence: np.ndarray) -> int:
    """Count rows of ``presence`` whose world connects all ``nodes``.

    ``presence`` is a boolean ``(rows, len(edges))`` batch matrix with
    columns in ``edges`` order. The count is additive over disjoint row
    sets, which is what lets the reliability harness fan batches across
    worker processes without changing the estimate.
    """
    n = len(nodes)
    if n == 0:
        return 0
    if n == 1:
        return int(presence.shape[0])
    hits = 0
    for row in presence:
        present = [edges[j] for j in np.flatnonzero(row)]
        if _world_connects(nodes, present):
            hits += 1
    return hits


def network_reliability_exact(graph: ProbabilisticGraph) -> float:
    """Return ``Pr[graph is connected]`` by world enumeration (Eq. 4).

    Exponential in the edge count (limit 22); a single node is connected
    with probability 1, an empty or structurally disconnected graph has
    reliability 0.
    """
    n = graph.number_of_nodes()
    if n == 0:
        return 0.0
    if n == 1:
        return 1.0
    if not is_connected(graph):
        return 0.0
    edges = list(graph.edges())
    m = len(edges)
    if m > _MAX_EXACT_EDGES:
        raise ParameterError(
            f"exact reliability enumerates 2^m worlds; {m} edges exceeds "
            f"the limit of {_MAX_EXACT_EDGES}"
        )
    probs = [graph.probability(u, v) for u, v in edges]
    nodes = list(graph.nodes())
    total = 0.0
    for mask in range(1 << m):
        world_prob = 1.0
        present: list[Edge] = []
        for i in range(m):
            if mask >> i & 1:
                world_prob *= probs[i]
                present.append(edges[i])
            else:
                world_prob *= 1.0 - probs[i]
        if world_prob and _world_connects(nodes, present):
            total += world_prob
    return total


def network_reliability_mc(
    graph: ProbabilisticGraph,
    n_samples: int = 1000,
    seed: int | np.random.Generator | None = None,
    samples: WorldSampleSet | None = None,
) -> float:
    """Monte-Carlo estimate of ``Pr[graph is connected]``."""
    n = graph.number_of_nodes()
    if n == 0:
        return 0.0
    if n == 1:
        return 1.0
    if samples is None:
        samples = WorldSampleSet.from_graph(graph, n_samples, seed=seed)
    nodes = list(graph.nodes())
    hits = 0
    for present in samples.iter_worlds():
        if _world_connects(nodes, list(present)):
            hits += 1
    return hits / samples.n_samples


def two_terminal_reliability_exact(
    graph: ProbabilisticGraph, s: Node, t: Node
) -> float:
    """Return ``Pr[s and t are connected]`` by world enumeration."""
    for x in (s, t):
        if not graph.has_node(x):
            raise NodeNotFoundError(x)
    if s == t:
        return 1.0
    edges = list(graph.edges())
    m = len(edges)
    if m > _MAX_EXACT_EDGES:
        raise ParameterError(
            f"exact reliability enumerates 2^m worlds; {m} edges exceeds "
            f"the limit of {_MAX_EXACT_EDGES}"
        )
    probs = [graph.probability(u, v) for u, v in edges]
    total = 0.0
    for mask in range(1 << m):
        world_prob = 1.0
        present: list[Edge] = []
        for i in range(m):
            if mask >> i & 1:
                world_prob *= probs[i]
                present.append(edges[i])
            else:
                world_prob *= 1.0 - probs[i]
        if world_prob == 0.0:
            continue
        world = graph.project_world(present)
        if t in component_of(world, s):
            total += world_prob
    return total


def two_terminal_reliability_mc(
    graph: ProbabilisticGraph,
    s: Node,
    t: Node,
    n_samples: int = 1000,
    seed: int | np.random.Generator | None = None,
) -> float:
    """Monte-Carlo estimate of ``Pr[s and t are connected]``."""
    for x in (s, t):
        if not graph.has_node(x):
            raise NodeNotFoundError(x)
    if s == t:
        return 1.0
    samples = WorldSampleSet.from_graph(graph, n_samples, seed=seed)
    adjacency_template = {u: set() for u in graph.nodes()}
    hits = 0
    for present in samples.iter_worlds():
        adj = {u: set() for u in adjacency_template}
        for u, v in present:
            adj[u].add(v)
            adj[v].add(u)
        seen = {s}
        stack = [s]
        found = False
        while stack and not found:
            x = stack.pop()
            for y in adj[x]:
                if y == t:
                    found = True
                    break
                if y not in seen:
                    seen.add(y)
                    stack.append(y)
        if found:
            hits += 1
    return hits / samples.n_samples


def theorem1_gadget(
    graph: ProbabilisticGraph, anchor: Node, pendant: Node = "__pendant__"
) -> tuple[ProbabilisticGraph, Edge]:
    """Build the Theorem 1 reduction instance.

    Returns ``(H, e)`` where H is ``graph`` plus a certain pendant edge
    ``(pendant, anchor)``; by Theorem 1,
    ``alpha_2(H, e) == network_reliability(graph)``.
    """
    if not graph.has_node(anchor):
        raise NodeNotFoundError(anchor)
    if graph.has_node(pendant):
        raise ParameterError(f"pendant node {pendant!r} already exists")
    gadget = graph.copy()
    gadget.add_edge(pendant, anchor, 1.0)
    return gadget, edge_key(pendant, anchor)
