"""Bit-parallel kernels over the packed presence matrix.

The sampling oracle stores its ``N`` possible worlds bit-packed: one
``uint8`` column of ``ceil(N / 8)`` bytes per edge (see
:class:`~repro.graphs.sampling.WorldSampleSet`). Historically every
oracle evaluation immediately undid that packing with
``np.unpackbits(...).astype(bool)`` — an 8x memory blow-up per candidate
that also defeated the spill-to-disk backend by re-materialising the
memmapped samples in RAM, and that each worker process paid again for
its own block of rows.

This module is the one place allowed to cross the packed/unpacked
boundary. Everything here operates on the packed ``(ceil(N/8), m)``
layout directly — popcounts instead of boolean sums, byte AND-reduction
instead of row scans — and unpacks only the (usually few) *partial*
candidate rows that per-pattern classification genuinely needs. Each
kernel has a pure-numpy unpacked counterpart next to its tests; results
are exactly equal (integer counts) or bit-identical (float estimates),
so the packed path is a drop-in replacement everywhere, including under
the parallel row-block split.

Bit layout contract (from ``np.packbits(presence, axis=0)``): sample
``i`` of column ``j`` lives in byte ``packed[i >> 3, j]`` at bit
``7 - (i & 7)`` (MSB first); tail padding bits beyond ``N`` are zero.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import numpy as np

from repro.exceptions import ParameterError

__all__ = [
    "popcount",
    "column_counts",
    "masked_column_counts",
    "row_sums",
    "and_reduce_columns",
    "pack_row_mask",
    "bits_at_rows",
    "gather_rows",
    "unpack_matrix",
    "dedup_candidate_patterns",
    "classify_worlds_packed",
    "WorldClassifier",
]

Node = Hashable
Edge = tuple[Node, Node]

#: Beyond this many edges nearly every sampled world pattern is unique
#: and deduplication is pure overhead (mirrors the classifier's policy).
DEDUP_MAX_EDGES = 48

if hasattr(np, "bitwise_count"):
    def popcount(a: np.ndarray) -> np.ndarray:
        """Per-element popcount of a uint8 array (hardware-backed)."""
        return np.bitwise_count(a)
else:  # pragma: no cover - numpy < 2.0 fallback
    _POPCOUNT_TABLE = np.array(
        [bin(i).count("1") for i in range(256)], dtype=np.uint8
    )

    def popcount(a: np.ndarray) -> np.ndarray:
        """Per-element popcount of a uint8 array (table lookup)."""
        return _POPCOUNT_TABLE[a]


def column_counts(packed: np.ndarray) -> np.ndarray:
    """Per-column set-bit counts of a packed ``(B, m)`` matrix.

    Equals ``unpacked.sum(axis=0)`` of the boolean matrix: tail padding
    bits are zero by the packing contract, so no mask is needed.
    """
    return popcount(packed).sum(axis=0, dtype=np.int64)


def masked_column_counts(
    packed: np.ndarray, row_mask: np.ndarray
) -> np.ndarray:
    """Per-column counts restricted to the rows set in ``row_mask``.

    ``row_mask`` is a packed ``(B,)`` bit vector (see
    :func:`pack_row_mask`). Equals ``unpacked[rows].sum(axis=0)``.
    """
    if packed.ndim != 2:
        raise ParameterError("packed must be a 2-D (bytes, columns) matrix")
    return popcount(packed & row_mask[:, None]).sum(axis=0, dtype=np.int64)


def row_sums(packed: np.ndarray, n_samples: int) -> np.ndarray:
    """Per-sample (row) set-bit counts; equals ``unpacked.sum(axis=1)``.

    Eight shifted strided passes over the packed bytes — the peak
    temporary is one ``(B, m)`` byte array, 8x smaller than the unpacked
    boolean matrix the naive ``unpackbits(...).sum(axis=1)`` builds.
    """
    n_bytes, m = packed.shape
    out = np.zeros(n_bytes * 8, dtype=np.int64)
    for bit in range(8):
        out[bit::8] = (
            (packed >> np.uint8(7 - bit)) & np.uint8(1)
        ).sum(axis=1, dtype=np.int64)
    return out[:n_samples]


def and_reduce_columns(packed: np.ndarray) -> np.ndarray:
    """Byte-wise AND over all columns: the packed all-edges-present mask.

    Bit ``i`` of the result is set iff sample ``i`` contains *every*
    edge of the projection. An empty column set yields all-ones over the
    byte span (vacuous truth), matching ``unpacked.all(axis=1)``.
    """
    if packed.shape[1] == 0:
        return np.full(packed.shape[0], 0xFF, dtype=np.uint8)
    return np.bitwise_and.reduce(packed, axis=1)


def pack_row_mask(mask: np.ndarray) -> np.ndarray:
    """Pack a boolean row mask of length ``N`` into a ``(B,)`` bit vector."""
    return np.packbits(np.asarray(mask, dtype=bool))


def bits_at_rows(bit_vector: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Read individual bits of a packed ``(B,)`` vector at ``rows``.

    Returns a boolean array, ``out[t] = bit rows[t] of bit_vector``.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size == 0:
        return np.zeros(0, dtype=bool)
    shifts = (7 - (rows & 7)).astype(np.uint8)
    return ((bit_vector[rows >> 3] >> shifts) & 1).astype(bool)


def gather_rows(packed: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Unpack only the given sample rows of a packed ``(B, m)`` matrix.

    Returns the boolean ``(len(rows), m)`` sub-matrix — equal to
    ``unpacked[rows]`` without ever materialising the full unpacked
    matrix. This is the only row-level unpacking the packed
    classification path performs.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size == 0:
        return np.zeros((0, packed.shape[1]), dtype=bool)
    byte_rows = packed[rows >> 3]  # (len(rows), m) gathered bytes
    shifts = (7 - (rows & 7)).astype(np.uint8)[:, None]
    return ((byte_rows >> shifts) & 1).astype(bool)


def unpack_matrix(packed: np.ndarray, n_samples: int) -> np.ndarray:
    """Fully unpack a ``(B, m)`` matrix to boolean ``(N, m)``.

    The sanctioned compatibility unpacker — reference paths and
    small-N conveniences only; hot paths must stay packed. This is the
    one ``np.unpackbits`` call site the PAR004 lint rule whitelists.
    """
    return np.unpackbits(packed, axis=0, count=n_samples).astype(bool)


def dedup_candidate_patterns(
    packed: np.ndarray, candidate_rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Unique candidate presence patterns with multiplicities, packed-side.

    Returns ``(patterns, multiplicity)`` exactly equal to
    ``np.unique(unpacked[candidate_rows], axis=0, return_counts=True)``
    when ``m <= DEDUP_MAX_EDGES``, and to
    ``(unpacked[candidate_rows], ones)`` otherwise — the same policy the
    boolean reference classifier applies.

    The all-edges-present rows (typically the vast majority for
    high-probability candidates) are counted by a popcount of the
    column-AND byte mask and never unpacked; only the *partial* rows are
    gathered. The all-ones pattern is appended last, which is where
    ascending lexicographic ``np.unique`` sorts it, so even the pattern
    *order* matches the reference bit for bit.
    """
    candidate_rows = np.asarray(candidate_rows, dtype=np.int64)
    m = packed.shape[1]
    if m > DEDUP_MAX_EDGES:
        patterns = gather_rows(packed, candidate_rows)
        return patterns, np.ones(patterns.shape[0], dtype=np.int64)
    full_bits = and_reduce_columns(packed)
    is_full = bits_at_rows(full_bits, candidate_rows)
    n_full = int(is_full.sum())
    partial = gather_rows(packed, candidate_rows[~is_full])
    if partial.shape[0]:
        patterns, multiplicity = np.unique(
            partial, axis=0, return_counts=True
        )
        multiplicity = multiplicity.astype(np.int64)
    else:
        patterns = np.zeros((0, m), dtype=bool)
        multiplicity = np.zeros(0, dtype=np.int64)
    if n_full:
        patterns = np.concatenate(
            [patterns, np.ones((1, m), dtype=bool)], axis=0
        )
        multiplicity = np.concatenate(
            [multiplicity, np.array([n_full], dtype=np.int64)]
        )
    return patterns, multiplicity


class WorldClassifier:
    """Fast per-candidate classifier for sampled world patterns.

    Nodes and edges are mapped to integer indices once per candidate.
    Spanning connectivity of *all* patterns is decided in one shot by
    stacking them into a block-diagonal sparse graph and running scipy's
    C connected-components over it; the k-truss condition (k >= 3) is
    then checked per surviving pattern with index-based common-neighbour
    counts. Semantically identical to
    :func:`repro.core.global_truss.world_is_connected_ktruss`, orders of
    magnitude faster in the Monte-Carlo oracle's inner loop.
    """

    __slots__ = ("n", "ends_u", "ends_v", "k")

    def __init__(self, edges: Sequence[Edge], nodes: Sequence[Node], k: int):
        index = {u: i for i, u in enumerate(nodes)}
        self.n = len(nodes)
        self.ends_u = np.array([index[u] for u, _ in edges], dtype=np.int64)
        self.ends_v = np.array([index[v] for _, v in edges], dtype=np.int64)
        self.k = k

    def connected_mask(self, patterns: np.ndarray) -> np.ndarray:
        """Boolean mask: which patterns connect all ``n`` nodes.

        ``patterns`` is a (P, m) boolean matrix. Patterns are stacked
        into one disjoint union (pattern t's nodes live at offset t*n)
        and classified with a single C-level connected-components call.
        """
        n_patterns = patterns.shape[0]
        if self.n == 0 or n_patterns == 0:
            return np.zeros(n_patterns, dtype=bool)
        if self.n == 1:
            return np.ones(n_patterns, dtype=bool)
        from scipy.sparse import coo_matrix
        from scipy.sparse.csgraph import connected_components

        t_idx, j_idx = np.nonzero(patterns)
        rows = t_idx * self.n + self.ends_u[j_idx]
        cols = t_idx * self.n + self.ends_v[j_idx]
        total = n_patterns * self.n
        graph = coo_matrix(
            (np.ones(len(rows), dtype=np.int8), (rows, cols)),
            shape=(total, total),
        )
        _, labels = connected_components(graph, directed=False)
        blocks = labels.reshape(n_patterns, self.n)
        return (blocks == blocks[:, :1]).all(axis=1)

    def truss_ok(self, present_columns: np.ndarray) -> bool:
        """k-truss condition over the present edges (k >= 3 only)."""
        need = self.k - 2
        if need <= 0:
            return True
        adj: list[set[int]] = [set() for _ in range(self.n)]
        us = self.ends_u[present_columns]
        vs = self.ends_v[present_columns]
        for a, b in zip(us, vs):
            adj[a].add(b)
            adj[b].add(a)
        return all(
            len(adj[a] & adj[b]) >= need for a, b in zip(us, vs)
        )


def classify_worlds_packed(
    edges: Sequence[Edge], nodes: Sequence[Node], k: int,
    packed: np.ndarray, candidate_rows: np.ndarray,
) -> dict[Edge, int]:
    """Count qualifying worlds containing each edge, from packed columns.

    Packed-domain equivalent of
    :func:`repro.core.global_truss.classify_worlds` — same counts, same
    dedup policy, without the full boolean projection. ``packed`` is the
    candidate's ``(B, m)`` packed column matrix (one column per entry of
    ``edges``) and ``candidate_rows`` the sample indices to classify.

    Counts are additive over disjoint row sets — the property the
    parallel oracle uses to classify row blocks in worker processes and
    sum the integer counts with no change in the result.
    """
    edges = list(edges)
    counts = {e: 0 for e in edges}
    candidate_rows = np.asarray(candidate_rows, dtype=np.int64)
    if candidate_rows.size == 0 or not edges:
        return counts
    classifier = WorldClassifier(edges, list(nodes), k)
    patterns, multiplicity = dedup_candidate_patterns(packed, candidate_rows)
    qualifying = classifier.connected_mask(patterns)
    if k > 2:
        for i in np.flatnonzero(qualifying):
            if not classifier.truss_ok(np.flatnonzero(patterns[i])):
                qualifying[i] = False
    if qualifying.any():
        counts_vec = patterns[qualifying].astype(np.int64).T @ (
            multiplicity[qualifying]
        )
        counts = {e: int(counts_vec[j]) for j, e in enumerate(edges)}
    return counts
