"""Probabilistic (k, eta)-core decomposition (Bonchi et al., KDD 2014).

The comparator of Section 6.4: a (k, eta)-core of a probabilistic graph
is a maximal subgraph in which every node has degree at least k with
probability at least eta. A node's degree is Poisson-binomial over its
incident edge probabilities, so the same dynamic-programming /
deconvolution machinery as for edge supports applies — here the
Bernoulli factors are the incident edges themselves.

The decomposition peels nodes by *eta-degree* (the largest k with
``Pr[deg(v) >= k] >= eta``), mirroring Batagelj–Zaversnik; the resulting
core number ``kappa(v)`` is the largest k such that v belongs to the
(k, eta)-core.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.exceptions import ParameterError
from repro.graphs.probabilistic import ProbabilisticGraph
from repro.core.support_prob import SupportProbability

__all__ = [
    "EtaDegree",
    "eta_core_decomposition",
    "eta_core_subgraph",
    "max_eta_core_number",
]

Node = Hashable


class EtaDegree:
    """Live degree PMF of one node with O(d) incident-edge removal.

    Wraps a Poisson-binomial PMF over the node's incident edge
    probabilities. ``eta_degree(eta)`` is the node-level analogue of the
    edge truss level; :meth:`remove_incident_edge` deconvolves a removed
    neighbour's Bernoulli factor (same Eq. 8 algebra as for supports).
    """

    __slots__ = ("_pmf",)

    def __init__(self, incident_probabilities=()):
        self._pmf = SupportProbability(list(incident_probabilities))

    @classmethod
    def from_node(cls, graph: ProbabilisticGraph, u: Node) -> "EtaDegree":
        """Build the degree PMF of node ``u`` from its current neighbours."""
        return cls(graph.neighbor_probabilities(u).values())

    @property
    def max_degree(self) -> int:
        """Number of (remaining) incident edges."""
        return self._pmf.max_support

    def tail(self, t: int) -> float:
        """Return ``Pr[deg >= t]``."""
        return self._pmf.tail(t)

    def eta_degree(self, eta: float) -> int:
        """Return the largest k with ``Pr[deg >= k] >= eta`` (>= 0)."""
        if not 0.0 < eta <= 1.0:
            raise ParameterError(f"eta must be in (0, 1], got {eta}")
        pmf = self._pmf.pmf
        running = 0.0
        for t in range(len(pmf) - 1, 0, -1):
            running += pmf[t]
            if min(1.0, running) >= eta:
                return t
        return 0

    def remove_incident_edge(self, probability: float) -> None:
        """Deconvolve a removed incident edge's Bernoulli(p) factor."""
        self._pmf.remove_triangle(probability)


def eta_core_decomposition(
    graph: ProbabilisticGraph, eta: float
) -> dict[Node, int]:
    """Return the (k, eta)-core number ``kappa(v)`` of every node.

    Peeling with a bucket queue: repeatedly remove a node of minimum
    eta-degree, deconvolving its edges out of its neighbours' degree
    PMFs. ``kappa(v)`` is the running maximum of eta-degrees at removal,
    exactly as in deterministic core decomposition.
    """
    if not 0.0 < eta <= 1.0:
        raise ParameterError(f"eta must be in (0, 1], got {eta}")
    degrees = {u: EtaDegree.from_node(graph, u) for u in graph.nodes()}
    levels = {u: d.eta_degree(eta) for u, d in degrees.items()}
    if not levels:
        return {}

    top = max(levels.values())
    buckets: list[set[Node]] = [set() for _ in range(top + 1)]
    for u, lvl in levels.items():
        buckets[lvl].add(u)

    alive = dict(levels)
    core: dict[Node, int] = {}
    cursor = 0
    k = 0
    remaining = graph.copy()
    for _ in range(len(levels)):
        while not buckets[cursor]:
            cursor += 1
        u = buckets[cursor].pop()
        del alive[u]
        k = max(k, cursor)
        core[u] = k
        for v in list(remaining.neighbors(u)):
            if v not in alive:
                continue
            degrees[v].remove_incident_edge(remaining.probability(u, v))
            new_level = degrees[v].eta_degree(eta)
            old_level = alive[v]
            if new_level < old_level:
                buckets[old_level].discard(v)
                alive[v] = new_level
                buckets[new_level].add(v)
                if new_level < cursor:
                    cursor = new_level
        remaining.remove_node(u)
    return core


def eta_core_subgraph(
    graph: ProbabilisticGraph, k: int, eta: float
) -> ProbabilisticGraph:
    """Return the (k, eta)-core: nodes with core number >= k, induced.

    May be disconnected (Bonchi et al. do not require connectivity);
    empty when no node reaches core number k.
    """
    if k < 0:
        raise ParameterError(f"k must be non-negative, got {k}")
    core = eta_core_decomposition(graph, eta)
    return graph.subgraph([u for u, c in core.items() if c >= k])


def max_eta_core_number(graph: ProbabilisticGraph, eta: float) -> int:
    """Return ``k_cmax`` — the largest (k, eta)-core number of any node."""
    core = eta_core_decomposition(graph, eta)
    return max(core.values(), default=0)
