"""Edge support probabilities: the Algorithm 2 DP and the Eq. (8) update.

For an edge ``e = (u, v)`` of a probabilistic graph, its support
``sup(e)`` — the number of triangles containing it — is a random
variable. Conditioned on ``e`` existing, each common neighbour ``w``
contributes a triangle independently with probability
``q_w = p(w, u) * p(w, v)``, so ``sup(e)`` is Poisson-binomial over the
``q_w``. This module computes its PMF:

* :func:`support_pmf` — the O(k_e^2) dynamic program of Algorithm 2;
* :class:`SupportProbability` — a live PMF that supports the O(k_e)
  *deconvolution* update of Eq. (8) when a triangle is destroyed by an
  edge removal (the key to the efficient local decomposition);
* :func:`support_pmf_bruteforce` — the exponential possible-world sum of
  Eq. (2), used as a test oracle.

All PMFs here are **conditional on the edge existing**; the paper's
unconditional tail probabilities are obtained by multiplying by ``p(e)``
(see Section 4.1, "the true edge support probabilities").
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from itertools import combinations

from repro.exceptions import EdgeNotFoundError, ParameterError
from repro.graphs.probabilistic import ProbabilisticGraph

__all__ = [
    "triangle_probabilities",
    "support_pmf",
    "support_pmf_reference",
    "support_tail",
    "support_pmf_bruteforce",
    "SupportProbability",
]

Node = Hashable

# Probability mass below this is treated as floating-point dust when the
# Eq. (8) deconvolution produces slightly negative values.
_EPS = 1e-12


def triangle_probabilities(
    graph: ProbabilisticGraph, u: Node, v: Node
) -> dict[Node, float]:
    """Return ``{w: p(w, u) * p(w, v)}`` for every common neighbour ``w``.

    ``q_w`` is the probability that the triangle (u, v, w) exists, given
    that edge (u, v) exists.
    """
    if not graph.has_edge(u, v):
        raise EdgeNotFoundError(u, v)
    return {
        w: graph.probability(w, u) * graph.probability(w, v)
        for w in graph.common_neighbors(u, v)
    }


def support_pmf_reference(qs: Sequence[float]) -> list[float]:
    """Pure-Python rolling-array DP — differential reference.

    Same recurrence, element at a time. IEEE addition and
    multiplication make :func:`support_pmf`'s vectorized convolution
    step bit-identical to this loop (each output element is the sum of
    the same two products), so the two agree exactly, not just within
    tolerance — the property the differential tests assert.
    """
    f = [1.0]
    for q in qs:
        if not 0.0 <= q <= 1.0:
            raise ParameterError(f"triangle probability must be in [0, 1], got {q}")
        nxt = [0.0] * (len(f) + 1)
        for i, mass in enumerate(f):
            nxt[i] += (1.0 - q) * mass
            nxt[i + 1] += q * mass
        f = nxt
    return f


def support_pmf(qs: Sequence[float]) -> list[float]:
    """Return the Poisson-binomial PMF of the number of existing triangles.

    ``qs`` are the per-triangle probabilities ``q_w``; the result ``f``
    has length ``len(qs) + 1`` with ``f[i] = Pr[sup(e) = i | e exists]``.
    This is Algorithm 2's dynamic program: processing common neighbours
    one at a time, ``f(i, l) = q_l f(i-1, l-1) + (1 - q_l) f(i, l-1)``,
    with the inner convolution step as two vectorized numpy shifts
    instead of the per-element Python loop (bit-identical to
    :func:`support_pmf_reference`).
    """
    import numpy as np

    qs = list(qs)
    for q in qs:
        if not 0.0 <= q <= 1.0:
            raise ParameterError(f"triangle probability must be in [0, 1], got {q}")
    f = np.ones(1, dtype=np.float64)
    for q in qs:
        nxt = np.zeros(f.size + 1, dtype=np.float64)
        nxt[:-1] += (1.0 - q) * f
        nxt[1:] += q * f
        f = nxt
    return f.tolist()


def support_tail(pmf: Sequence[float]) -> list[float]:
    """Return the tail vector ``sigma[t] = Pr[sup(e) >= t]`` for t = 0..k_e.

    ``sigma[0]`` is always 1 (conditional on the edge existing) and the
    vector is monotonically non-increasing — the property Algorithm 1
    exploits (Section 4.1, "Monotonicity of sigma(e)").
    """
    sigma = [0.0] * len(pmf)
    running = 0.0
    for t in range(len(pmf) - 1, -1, -1):
        running += pmf[t]
        sigma[t] = min(1.0, running)
    return sigma


def support_pmf_bruteforce(qs: Sequence[float]) -> list[float]:
    """Exponential-time PMF by summing over all triangle subsets (Eq. 2).

    For every subset W of triangles, adds
    ``prod_{w in W} q_w * prod_{w not in W} (1 - q_w)`` to ``f[|W|]``.
    O(2^k_e) — strictly a test oracle for :func:`support_pmf`.
    """
    k = len(qs)
    f = [0.0] * (k + 1)
    indices = range(k)
    for size in range(k + 1):
        for subset in combinations(indices, size):
            chosen = set(subset)
            prob = 1.0
            for i, q in enumerate(qs):
                prob *= q if i in chosen else (1.0 - q)
            f[size] += prob
    return f


class SupportProbability:
    """Live support PMF of one edge, supporting O(k_e) triangle removal.

    Maintains ``f[i] = Pr[sup(e) = i | e exists]`` over the current set of
    triangles through edge ``e``. When the local decomposition removes an
    adjacent edge and thereby destroys the triangle with apex ``w``
    (probability ``q_w``), :meth:`remove_triangle` *deconvolves* that
    Bernoulli factor out of the PMF via Eq. (8):

        f_new(i) = (f_old(i) - q * f_new(i-1)) / (1 - q)

    with the degenerate ``q = 1`` case handled as a left shift (a
    certain triangle contributes exactly one unit of support, so removing
    it shifts the PMF down by one).

    Numerical safety: repeated deconvolution amplifies floating-point
    error by roughly ``1 / |1 - 2q|`` per removal, which explodes when
    many near-0.5 triangles are removed. The object therefore tracks the
    multiset of remaining triangle probabilities plus a running error
    bound, and transparently recomputes the PMF from scratch (O(k_e^2))
    the moment the bound degrades — keeping the common case O(k_e) and
    the result always accurate.
    """

    __slots__ = ("_pmf", "_qs", "_err")

    def __init__(self, qs: Sequence[float] = ()):
        self._qs: list[float] | None = [float(q) for q in qs]
        self._pmf: list[float] = support_pmf(self._qs)
        self._err: float = 1e-16

    @classmethod
    def from_edge(
        cls, graph: ProbabilisticGraph, u: Node, v: Node
    ) -> "SupportProbability":
        """Build the PMF of edge (u, v) from the graph's current triangles."""
        return cls(list(triangle_probabilities(graph, u, v).values()))

    @classmethod
    def from_factors(
        cls, qs: Sequence[float], pmf: Sequence[float]
    ) -> "SupportProbability":
        """Wrap a PMF together with the triangle factors that produced it.

        ``pmf`` must be ``support_pmf(qs)`` computed elsewhere — this is
        the hand-off used when the O(k_e^2) initial DPs are computed in
        worker processes and shipped back: the parent rebuilds a fully
        functional object (recompute safety net included) without
        re-running the DP.
        """
        qs = [float(q) for q in qs]
        pmf = [float(x) for x in pmf]
        if len(pmf) != len(qs) + 1:
            raise ParameterError(
                f"PMF of length {len(pmf)} does not match "
                f"{len(qs)} triangle factors"
            )
        obj = cls.__new__(cls)
        obj._pmf = pmf
        obj._qs = qs
        obj._err = 1e-16
        return obj

    @classmethod
    def from_pmf(cls, pmf: Sequence[float]) -> "SupportProbability":
        """Wrap an existing PMF (must sum to ~1); used by tests and copies."""
        total = sum(pmf)
        if abs(total - 1.0) > 1e-6:
            raise ParameterError(f"PMF must sum to 1, sums to {total}")
        obj = cls.__new__(cls)
        obj._pmf = [float(x) for x in pmf]
        obj._qs = None  # unknown factors: no recompute safety net
        obj._err = 1e-16
        return obj

    # ------------------------------------------------------------------
    @property
    def max_support(self) -> int:
        """Current ``k_e`` — the number of (remaining) potential triangles."""
        return len(self._pmf) - 1

    @property
    def pmf(self) -> list[float]:
        """Copy of the conditional PMF ``[f(0), ..., f(k_e)]``."""
        return list(self._pmf)

    def probability_eq(self, i: int) -> float:
        """Return ``Pr[sup(e) = i | e exists]`` (0 outside the range)."""
        if 0 <= i < len(self._pmf):
            return self._pmf[i]
        return 0.0

    def tail(self, t: int) -> float:
        """Return ``sigma(e, t) = Pr[sup(e) >= t | e exists]``."""
        if t <= 0:
            return 1.0
        if t > self.max_support:
            return 0.0
        return min(1.0, sum(self._pmf[t:]))

    def tail_vector(self) -> list[float]:
        """Return ``[sigma(0), ..., sigma(k_e)]``."""
        return support_tail(self._pmf)

    def level(self, gamma: float, edge_probability: float) -> int:
        """Return the largest k with ``sigma(e, k-2) * p(e) >= gamma``.

        This is the edge's current *local truss level*: the maximum k for
        which the edge passes Definition 2's per-edge test against its
        present neighbourhood. Edges with ``p(e) < gamma`` return 1
        (they belong to no local (k, gamma)-truss for k >= 2, since
        ``Pr[sup >= 0] = p(e)``).
        """
        if not 0.0 <= gamma <= 1.0:
            raise ParameterError(f"gamma must be in [0, 1], got {gamma}")
        # Threshold comparisons use a small *relative* slack so that
        # probabilities sitting exactly at gamma (common in hand-built
        # examples) survive the floating-point dust accumulated by
        # repeated Eq. (8) deconvolutions.
        threshold = gamma * (1.0 - 1e-9)
        if edge_probability < threshold:
            return 1
        # sigma(t) is non-increasing in t, so scanning t from the top the
        # first passing tail is the largest; t = 0 always passes because
        # sigma(0) * p(e) = p(e) >= gamma was checked above.
        running = 0.0
        for t in range(len(self._pmf) - 1, 0, -1):
            running += self._pmf[t]
            if min(1.0, running) * edge_probability >= threshold:
                return t + 2
        return 2

    # ------------------------------------------------------------------
    def add_triangle(self, q: float) -> None:
        """Convolve a new Bernoulli(q) triangle into the PMF (O(k_e))."""
        if not 0.0 <= q <= 1.0:
            raise ParameterError(f"triangle probability must be in [0, 1], got {q}")
        nxt = [0.0] * (len(self._pmf) + 1)
        for i, mass in enumerate(self._pmf):
            nxt[i] += (1.0 - q) * mass
            nxt[i + 1] += q * mass
        self._pmf = nxt
        if self._qs is not None:
            self._qs.append(float(q))

    def remove_triangle(self, q: float) -> None:
        """Deconvolve a Bernoulli(q) triangle out of the PMF (Eq. 8, O(k_e)).

        ``q`` must be one of the triangle probabilities previously folded
        in (the caller is responsible for passing the right value — the
        decomposition tracks them per apex).

        Numerical stability: Eq. (8) as written divides by ``1 - q``,
        which amplifies error when the removed triangle is near-certain.
        The same recurrence can be solved from the top down, dividing by
        ``q`` instead, so we pick the direction whose divisor is larger —
        the amplification per step is then bounded by 2.
        """
        if not 0.0 <= q <= 1.0:
            raise ParameterError(f"triangle probability must be in [0, 1], got {q}")
        if self.max_support == 0:
            raise ParameterError("no triangles left to remove")
        if self._qs is not None:
            self._drop_factor(q)
            # Error amplification of the deconvolution is ~1/|1-2q|;
            # once the accumulated bound threatens the 1e-9-relative
            # threshold comparisons, rebuild exactly from the factors.
            spread = abs(1.0 - 2.0 * q)
            amplification = 1.0 / spread if spread > 1e-6 else 1e6
            self._err = self._err * amplification + 1e-15
            if self._err > 1e-10:
                self._pmf = support_pmf(self._qs)
                self._err = 1e-16
                return
        old = self._pmf
        n = len(old) - 1
        new = [0.0] * n
        if q >= 1.0 - 1e-15:
            # Certain triangle: sup_old = sup_new + 1, so shift left.
            for i in range(n):
                new[i] = old[i + 1]
        elif q <= 0.0:
            # Impossible triangle contributed nothing: drop the top cell.
            new = old[:n]
        elif q < 0.5:
            # Forward (Eq. 8): f_new(i) = (f_old(i) - q f_new(i-1)) / (1-q).
            prev = 0.0
            inv = 1.0 / (1.0 - q)
            for i in range(n):
                value = (old[i] - q * prev) * inv
                # Clamp floating-point dust; genuine mass is never negative.
                if value < 0.0:
                    value = 0.0 if value > -_EPS * len(old) else value
                prev = value
                new[i] = value
        else:
            # Backward: f_new(i-1) = (f_old(i) - (1-q) f_new(i)) / q,
            # seeded by f_new(n-1) = f_old(n) / q.
            inv = 1.0 / q
            rest = 1.0 - q
            prev = old[n] * inv
            if prev < 0.0 and prev > -_EPS * len(old):
                prev = 0.0
            new[n - 1] = prev
            for i in range(n - 1, 0, -1):
                value = (old[i] - rest * prev) * inv
                if value < 0.0:
                    value = 0.0 if value > -_EPS * len(old) else value
                prev = value
                new[i - 1] = value
        self._pmf = new

    def _drop_factor(self, q: float) -> None:
        """Remove the factor matching ``q`` from the tracked multiset."""
        qs = self._qs
        best_idx = -1
        best_diff = 1e-9
        for i, value in enumerate(qs):
            diff = abs(value - q)
            if diff <= best_diff:
                best_idx = i
                best_diff = diff
        if best_idx < 0:
            raise ParameterError(
                f"no tracked triangle has probability {q!r}"
            )
        del qs[best_idx]

    def copy(self) -> "SupportProbability":
        """Return an independent copy."""
        obj = SupportProbability.__new__(SupportProbability)
        obj._pmf = list(self._pmf)
        obj._qs = None if self._qs is None else list(self._qs)
        obj._err = self._err
        return obj

    def __repr__(self) -> str:
        return f"SupportProbability(k_e={self.max_support})"
