"""Cohesiveness metrics for probabilistic subgraphs (Section 6.1).

* :func:`probabilistic_density` — Eq. (12): expected number of edges over
  the maximum possible number of node pairs.
* :func:`probabilistic_clustering_coefficient` — Eq. (13), the PCC of
  Pfeiffer & Neville: expected closed wedges over expected wedges.
* :func:`clustering_coefficient` — the deterministic (structure-only)
  global clustering coefficient used in Table 3's CC column.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.graphs.probabilistic import ProbabilisticGraph

__all__ = [
    "probabilistic_density",
    "probabilistic_clustering_coefficient",
    "clustering_coefficient",
    "expected_edge_count",
]

Node = Hashable


def expected_edge_count(graph: ProbabilisticGraph) -> float:
    """Return the expected number of existing edges, ``sum of p(e)``."""
    return sum(p for _, _, p in graph.edges_with_probabilities())


def probabilistic_density(graph: ProbabilisticGraph) -> float:
    """Return Eq. (12): ``sum p(e) / (|V| (|V|-1) / 2)``.

    Zero for graphs with fewer than two nodes.
    """
    n = graph.number_of_nodes()
    if n < 2:
        return 0.0
    return expected_edge_count(graph) / (n * (n - 1) / 2.0)


def probabilistic_clustering_coefficient(graph: ProbabilisticGraph) -> float:
    """Return Eq. (13), the probabilistic clustering coefficient.

    ``PCC = 3 * sum over triangles of p(u,v) p(v,w) p(w,u) /
    sum over wedges (u; v, w) of p(u,v) p(u,w)``.

    Zero when the graph has no wedges (e.g. a single edge — the paper
    excludes such graphs from PCC averages; callers should do the same).
    """
    triangle_mass = 0.0
    for u, v, w in graph.triangles():
        triangle_mass += (
            graph.probability(u, v)
            * graph.probability(v, w)
            * graph.probability(w, u)
        )
    wedge_mass = 0.0
    for u in graph.nodes():
        probs = list(graph.neighbor_probabilities(u).values())
        total = sum(probs)
        square_sum = sum(p * p for p in probs)
        # sum over unordered neighbour pairs v != w of p(u,v) p(u,w).
        wedge_mass += (total * total - square_sum) / 2.0
    if wedge_mass <= 0.0:
        return 0.0
    return 3.0 * triangle_mass / wedge_mass


def clustering_coefficient(graph: ProbabilisticGraph) -> float:
    """Return the deterministic global clustering coefficient.

    ``3 * #triangles / #wedges``, probabilities ignored (Table 3's CC).
    Zero when there are no wedges.
    """
    triangles = sum(1 for _ in graph.triangles())
    wedges = 0
    for u in graph.nodes():
        d = graph.degree(u)
        wedges += d * (d - 1) // 2
    if wedges == 0:
        return 0.0
    return 3.0 * triangles / wedges
