"""Local (k, gamma)-truss decomposition (Algorithm 1 / Section 4).

The decomposition assigns every edge its *local trussness*
``tau(e)`` — the largest k such that e belongs to a local
(k, gamma)-truss (Definition 2) — by iterative peeling: repeatedly remove
the edge whose current truss level is smallest, then update the support
PMFs of the two co-triangle edges of every destroyed triangle.

Two update strategies are provided, matching the paper's Figure 5
comparison:

* ``method="dp"`` — the O(k_e) Eq. (8) deconvolution update
  (:meth:`~repro.core.support_prob.SupportProbability.remove_triangle`);
* ``method="baseline"`` — recompute the affected edge's PMF from scratch
  with the O(k_e^2) dynamic program after every removal.

Maximal local (k, gamma)-trusses are then the edge-connected clusters of
``{e : tau(e) >= k}`` (Theorem 2's connectivity post-processing).

Convention: edges with ``p(e) < gamma`` belong to no local
(k, gamma)-truss for any k >= 2 — Definition 2 with k = 2 demands
``Pr[sup(e) >= 0] = p(e) >= gamma`` — and receive trussness 1.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field

from repro.exceptions import ParameterError
from repro.graphs.components import edge_connected_components
from repro.graphs.probabilistic import ProbabilisticGraph, edge_key
from repro.core.support_prob import SupportProbability

__all__ = ["LocalTrussResult", "local_truss_decomposition", "maximal_local_trusses"]

Node = Hashable
Edge = tuple[Node, Node]

_METHODS = ("dp", "baseline")


class _LevelBuckets:
    """Bucket queue over edges keyed by truss level (levels only decrease)."""

    def __init__(self, levels: dict[Edge, int]):
        self._level = dict(levels)
        top = max(levels.values(), default=1)
        self._buckets: list[set[Edge]] = [set() for _ in range(top + 1)]
        for e, lvl in levels.items():
            self._buckets[lvl].add(e)
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._level)

    def pop_min(self) -> tuple[Edge, int]:
        """Remove and return an (edge, level) pair of minimum level."""
        while not self._buckets[self._cursor]:
            self._cursor += 1
        e = self._buckets[self._cursor].pop()
        del self._level[e]
        return e, self._cursor

    def contains(self, e: Edge) -> bool:
        return e in self._level

    def update(self, e: Edge, new_level: int) -> None:
        """Lower the level of ``e`` to ``new_level`` (no-op if not lower)."""
        old = self._level.get(e)
        if old is None or new_level >= old:
            return
        self._buckets[old].discard(e)
        self._level[e] = new_level
        self._buckets[new_level].add(e)
        if new_level < self._cursor:
            self._cursor = new_level


@dataclass
class LocalTrussResult:
    """Outcome of a local (k, gamma)-truss decomposition.

    Attributes
    ----------
    graph:
        The input probabilistic graph (unmodified).
    gamma:
        The probability threshold used.
    trussness:
        ``{edge: tau(e)}`` for every edge; ``tau(e) = 1`` marks edges in
        no local truss (k >= 2) at this gamma.
    method:
        ``"dp"`` or ``"baseline"``.
    """

    graph: ProbabilisticGraph
    gamma: float
    trussness: dict[Edge, int]
    method: str = "dp"
    _hierarchy_cache: dict[int, list[ProbabilisticGraph]] = field(
        default_factory=dict, repr=False
    )

    @property
    def k_max(self) -> int:
        """The largest k with a non-empty local (k, gamma)-truss (>= 2), or 0."""
        top = max(self.trussness.values(), default=0)
        return top if top >= 2 else 0

    def trussness_of(self, u: Node, v: Node) -> int:
        """Return ``tau((u, v))``."""
        return self.trussness[edge_key(u, v)]

    def truss_edges(self, k: int) -> list[Edge]:
        """Return all edges with trussness >= k."""
        if k < 2:
            raise ParameterError(f"k must be at least 2, got {k}")
        return [e for e, tau in self.trussness.items() if tau >= k]

    def maximal_trusses(self, k: int) -> list[ProbabilisticGraph]:
        """Return the maximal local (k, gamma)-trusses, as subgraphs.

        Each returned graph is a connected probabilistic subgraph in
        which every edge has ``Pr[sup >= k-2] * p(e) >= gamma`` w.r.t.
        that subgraph's own structure.
        """
        if k not in self._hierarchy_cache:
            edges = self.truss_edges(k)
            clusters = edge_connected_components(self.graph, edges)
            self._hierarchy_cache[k] = [
                self.graph.edge_subgraph(cluster) for cluster in clusters
            ]
        return list(self._hierarchy_cache[k])

    def hierarchy(self) -> dict[int, list[ProbabilisticGraph]]:
        """Return ``{k: maximal local (k, gamma)-trusses}`` for k = 2..k_max."""
        return {k: self.maximal_trusses(k) for k in range(2, self.k_max + 1)}


#: Peeled edges between two progress-hook notifications. Small enough
#: that a budget breach overshoots by a fraction of a second even on the
#: large synthetic networks, large enough to keep the hook off the
#: per-edge hot path.
_PROGRESS_INTERVAL = 64


def local_truss_decomposition(
    graph: ProbabilisticGraph,
    gamma: float,
    method: str = "dp",
    progress=None,
    executor=None,
) -> LocalTrussResult:
    """Run Algorithm 1: compute the local trussness of every edge.

    Parameters
    ----------
    graph:
        Input probabilistic graph (not modified).
    gamma:
        Threshold in [0, 1]; larger gamma prunes more aggressively.
    method:
        ``"dp"`` uses the Eq. (8) O(k_e) incremental update;
        ``"baseline"`` recomputes affected PMFs from scratch after each
        removal (the Figure 5 baseline).
    progress:
        Optional progress hook, called with a ``"local-peel"``
        :class:`~repro.runtime.progress.ProgressEvent` every
        ``_PROGRESS_INTERVAL`` peeled edges. A hook that raises aborts
        the peeling; the trussness assigned so far (which is final —
        peeling emits tau in nondecreasing order) is attached to the
        exception's ``partial`` attribute when it has one.
    executor:
        Optional :class:`~repro.parallel.ParallelExecutor`. The initial
        O(k_e^2) support DPs — the one embarrassingly parallel stage of
        Algorithm 1 — are then computed in chunks across its workers,
        with triangle factors in canonical node order so every worker
        count (including the inline 1) produces identical PMFs. The
        peeling itself stays serial: it is an inherently sequential
        bucket-queue scan. ``None`` keeps the original loop (whose qs
        ordering follows set iteration order) untouched.

    Returns
    -------
    LocalTrussResult
        Per-edge trussness plus accessors for maximal trusses.
    """
    if not 0.0 <= gamma <= 1.0:
        raise ParameterError(f"gamma must be in [0, 1], got {gamma}")
    if method not in _METHODS:
        raise ParameterError(f"method must be one of {_METHODS}, got {method!r}")

    work = graph.copy()
    pmfs: dict[Edge, SupportProbability] = {}
    levels: dict[Edge, int] = {}
    if executor is not None:
        pairs = [(u, v) for u, v, _ in work.edges_with_probabilities()]
        # A few chunks per worker keeps stragglers short without
        # drowning the pool in dispatch overhead.
        size = max(1, -(-len(pairs) // (executor.pool_workers * 4)))
        payloads = [
            (gamma, pairs[i:i + size]) for i in range(0, len(pairs), size)
        ]
        for chunk in executor.map("pmf-init", payloads, progress=progress):
            for u, v, qs, pmf, level in chunk:
                e = (u, v)
                pmfs[e] = SupportProbability.from_factors(qs, pmf)
                levels[e] = level
    else:
        for u, v, p in work.edges_with_probabilities():
            e = (u, v)
            sp = SupportProbability.from_edge(work, u, v)
            pmfs[e] = sp
            levels[e] = sp.level(gamma, p)

    queue = _LevelBuckets(levels)
    trussness: dict[Edge, int] = {}
    n_edges = len(levels)
    k = 1
    while queue:
        if progress is not None and trussness and (
                len(trussness) % _PROGRESS_INTERVAL == 0):
            from repro.runtime.progress import ProgressEvent

            try:
                progress(ProgressEvent(
                    "local-peel", step=len(trussness), total=n_edges,
                ))
            except Exception as err:
                # Salvage the final tau values assigned so far for
                # callers that report partial results.
                if getattr(err, "partial", None) is None:
                    try:
                        err.partial = dict(trussness)
                    except AttributeError:  # exceptions with __slots__
                        pass
                raise
        e, lvl = queue.pop_min()
        # Running max mirrors deterministic truss peeling: an edge whose
        # level cascaded below the current stage still met the stage-k
        # stability condition when stage k began, so tau(e) = k.
        k = max(k, lvl)
        trussness[e] = k
        u, v = e
        apexes = list(work.common_neighbors(u, v))
        if method == "dp":
            # Deconvolve the destroyed triangle out of each surviving
            # co-triangle edge's PMF (Eq. 8). For edge (u, w) the lost
            # triangle is completed through v; for (v, w), through u.
            for w in apexes:
                e_uw = edge_key(u, w)
                if queue.contains(e_uw):
                    q = work.probability(v, u) * work.probability(v, w)
                    pmfs[e_uw].remove_triangle(q)
                e_vw = edge_key(v, w)
                if queue.contains(e_vw):
                    q = work.probability(u, v) * work.probability(u, w)
                    pmfs[e_vw].remove_triangle(q)
        work.remove_edge(u, v)
        if method == "baseline":
            # Figure 5 baseline: recompute affected PMFs from scratch
            # with the full O(k_e^2) dynamic program.
            for w in apexes:
                for a, b in ((u, w), (v, w)):
                    other = edge_key(a, b)
                    if queue.contains(other):
                        pmfs[other] = SupportProbability.from_edge(work, a, b)
        # Refresh the truss levels of every affected edge; removing a
        # triangle only lowers sigma pointwise, so levels only decrease.
        for w in apexes:
            for a, b in ((u, w), (v, w)):
                other = edge_key(a, b)
                if queue.contains(other):
                    new_level = pmfs[other].level(gamma, work.probability(a, b))
                    queue.update(other, new_level)
    return LocalTrussResult(graph=graph, gamma=gamma, trussness=trussness,
                            method=method)


def maximal_local_trusses(
    graph: ProbabilisticGraph, k: int, gamma: float, method: str = "dp"
) -> list[ProbabilisticGraph]:
    """Convenience: decompose and return the maximal local (k, gamma)-trusses."""
    result = local_truss_decomposition(graph, gamma, method=method)
    return result.maximal_trusses(k)
