"""Descriptive statistics for probabilistic graphs.

Summaries used by the CLI, the benches and exploratory analysis:
degree and probability distributions, expected structural quantities,
and a one-call profile combining them with the Table 1 columns.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass

from repro.exceptions import ParameterError
from repro.graphs.probabilistic import ProbabilisticGraph
from repro.core.metrics import (
    clustering_coefficient,
    expected_edge_count,
    probabilistic_clustering_coefficient,
    probabilistic_density,
)

__all__ = [
    "GraphProfile",
    "degree_histogram",
    "probability_quantiles",
    "expected_triangle_count",
    "profile_graph",
]

Node = Hashable


def degree_histogram(graph: ProbabilisticGraph) -> dict[int, int]:
    """Return ``{degree: node count}`` (structural degrees)."""
    histogram: dict[int, int] = {}
    for u in graph.nodes():
        d = graph.degree(u)
        histogram[d] = histogram.get(d, 0) + 1
    return histogram


def probability_quantiles(
    graph: ProbabilisticGraph,
    quantiles: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
) -> dict[float, float]:
    """Return edge-probability quantiles (empty graph: all zeros)."""
    for q in quantiles:
        if not 0.0 <= q <= 1.0:
            raise ParameterError(f"quantile must be in [0, 1], got {q}")
    probs = sorted(p for _, _, p in graph.edges_with_probabilities())
    if not probs:
        return {q: 0.0 for q in quantiles}
    out: dict[float, float] = {}
    for q in quantiles:
        idx = min(len(probs) - 1, max(0, round(q * (len(probs) - 1))))
        out[q] = probs[idx]
    return out


def expected_triangle_count(graph: ProbabilisticGraph) -> float:
    """Return the expected number of materialised triangles.

    By linearity: sum over structural triangles of the product of their
    three edge probabilities.
    """
    total = 0.0
    for u, v, w in graph.triangles():
        total += (
            graph.probability(u, v)
            * graph.probability(v, w)
            * graph.probability(w, u)
        )
    return total


@dataclass(frozen=True)
class GraphProfile:
    """A one-call summary of an uncertain graph."""

    nodes: int
    edges: int
    max_degree: int
    mean_degree: float
    expected_edges: float
    expected_triangles: float
    structural_triangles: int
    density: float
    pcc: float
    clustering: float
    probability_median: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view (for printing / JSON)."""
        return {
            "nodes": self.nodes,
            "edges": self.edges,
            "max_degree": self.max_degree,
            "mean_degree": self.mean_degree,
            "expected_edges": self.expected_edges,
            "expected_triangles": self.expected_triangles,
            "structural_triangles": self.structural_triangles,
            "density": self.density,
            "pcc": self.pcc,
            "clustering": self.clustering,
            "probability_median": self.probability_median,
        }


def profile_graph(graph: ProbabilisticGraph) -> GraphProfile:
    """Compute a :class:`GraphProfile` for ``graph``."""
    n = graph.number_of_nodes()
    m = graph.number_of_edges()
    structural_triangles = sum(1 for _ in graph.triangles())
    return GraphProfile(
        nodes=n,
        edges=m,
        max_degree=graph.max_degree(),
        mean_degree=(2.0 * m / n) if n else 0.0,
        expected_edges=expected_edge_count(graph),
        expected_triangles=expected_triangle_count(graph),
        structural_triangles=structural_triangles,
        density=probabilistic_density(graph),
        pcc=probabilistic_clustering_coefficient(graph),
        clustering=clustering_coefficient(graph),
        probability_median=probability_quantiles(graph)[0.5],
    )
