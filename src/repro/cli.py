"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands
-----------
* ``repro datasets`` — list the bundled synthetic datasets with stats.
* ``repro stats GRAPH`` — Table 1 statistics of a graph (file or dataset).
* ``repro local GRAPH --gamma G`` — local (k, gamma)-truss decomposition.
* ``repro global GRAPH --gamma G [--method gbu|gtd]`` — global trusses.
* ``repro nucleus GRAPH --gamma G [--r 3 --s 4]`` — probabilistic
  (r, s)-nucleus decomposition; ``(2, 3)`` coincides with ``local``.
* ``repro team --keywords data algorithm --gamma G`` — the Section 6.5
  team-formation case study on the synthetic collaboration network.
* ``repro lint [PATHS...]`` — run the reprolint static invariant
  checker (determinism / parallel safety / progress protocol /
  exception taxonomy); exits 0 clean, 1 with findings, 2 on usage
  errors. See ``docs/static-analysis.md``.
* ``repro serve --state-dir DIR`` — the fault-tolerant HTTP query
  service over persistent decomposition indexes; see
  ``docs/serving.md``.

``GRAPH`` is either a dataset name (see ``repro datasets``) or a path to
an edge-list / JSON graph file.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.datasets import DATASET_NAMES, dataset_statistics, load_dataset
from repro.exceptions import (
    CheckpointError,
    ComputationInterrupted,
    DatasetError,
    ParameterError,
)
from repro.graphs.io import read_edge_list, read_json_graph
from repro.graphs.probabilistic import ProbabilisticGraph
from repro.core.local import local_truss_decomposition
from repro.core.metrics import probabilistic_density
from repro.runtime import (
    Budget,
    InterruptGuard,
    run_global,
    run_local,
    run_nucleus,
    run_reliability,
)

__all__ = ["main", "build_parser"]


def _load_graph(spec: str, seed: int | None) -> ProbabilisticGraph:
    """Resolve ``spec`` as a dataset name or a graph file path."""
    if spec.lower() in DATASET_NAMES:
        return load_dataset(spec, seed=seed)
    path = Path(spec)
    if not path.exists():
        raise SystemExit(
            f"error: {spec!r} is neither a dataset name "
            f"({', '.join(DATASET_NAMES)}) nor an existing file"
        )
    if path.suffix == ".json":
        return read_json_graph(path)
    return read_edge_list(path)


def _cmd_datasets(args: argparse.Namespace) -> int:
    if args.write:
        from repro.datasets.registry import export_datasets

        paths = export_datasets(args.write, seed=args.seed,
                                scale=args.scale, compress=args.compress)
        for path in paths:
            print(path)
        return 0
    print(f"{'name':<12} {'nodes':>7} {'edges':>8} {'d_max':>6} "
          f"{'largest CC':>11} {'#comp':>6}")
    for name in DATASET_NAMES:
        graph = load_dataset(name, seed=args.seed, scale=args.scale)
        stats = dataset_statistics(graph)
        print(f"{name:<12} {stats['nodes']:>7} {stats['edges']:>8} "
              f"{stats['max_degree']:>6} {stats['largest_cc_edges']:>11} "
              f"{stats['components']:>6}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.core.stats import profile_graph

    graph = _load_graph(args.graph, args.seed)
    stats = dataset_statistics(graph)
    for key, value in stats.items():
        print(f"{key}: {value}")
    profile = profile_graph(graph)
    print(f"mean_degree: {profile.mean_degree:.3f}")
    print(f"expected_edges: {profile.expected_edges:.1f}")
    print(f"expected_triangles: {profile.expected_triangles:.1f}")
    print(f"structural_triangles: {profile.structural_triangles}")
    print(f"probability_median: {profile.probability_median:.4f}")
    print(f"density: {profile.density:.6f}")
    print(f"pcc: {profile.pcc:.6f}")
    print(f"clustering: {profile.clustering:.6f}")
    return 0


def _workers_arg(value: str) -> int | str:
    """Parse ``--workers``: a positive integer or the literal ``auto``."""
    if value == "auto":
        return value
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}"
        ) from None


def _make_budget(args: argparse.Namespace) -> Budget | None:
    """Build the cooperative budget requested on the command line."""
    deadline = getattr(args, "deadline", None)
    max_samples = getattr(args, "max_samples", None)
    max_memory = getattr(args, "max_memory", None)
    if deadline is None and max_samples is None and max_memory is None:
        return None
    return Budget(
        deadline=deadline, max_samples=max_samples,
        max_memory_bytes=(
            None if max_memory is None else int(max_memory * 1024 * 1024)
        ),
    )


def _make_progress(guard: InterruptGuard, args: argparse.Namespace):
    """The progress hook: the interrupt guard plus an optional watchdog.

    Returns ``(hook, watchdog)``; the watchdog is None unless
    ``--watchdog SECONDS`` was given, in which case its one-line status
    summary is printed after the run.
    """
    watchdog_interval = getattr(args, "watchdog", None)
    if watchdog_interval is None:
        return guard.check, None
    from repro.runtime import chain_hooks
    from repro.runtime.pressure import ResourceWatchdog

    max_memory = getattr(args, "max_memory", None)
    watchdog = ResourceWatchdog(
        probe_dir=getattr(args, "checkpoint", None),
        interval=watchdog_interval,
        memory_limit_bytes=(
            None if max_memory is None else int(max_memory * 1024 * 1024)
        ),
    )
    return chain_hooks(guard.check, watchdog), watchdog


def _cmd_local(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph, args.seed)
    with InterruptGuard() as guard:
        progress, watchdog = _make_progress(guard, args)
        partial = run_local(
            graph, args.gamma, method=args.method,
            budget=_make_budget(args), checkpoint_dir=args.checkpoint,
            resume=args.resume, progress=progress, workers=args.workers,
            task_timeout=args.task_timeout,
            task_cpu_timeout=args.task_cpu_timeout,
            max_task_retries=args.max_task_retries,
        )
    if watchdog is not None:
        print(watchdog.status())
    result = partial.result
    print(f"gamma={args.gamma} k_max={result.k_max}")
    for k in range(2, result.k_max + 1):
        trusses = result.maximal_trusses(k)
        sizes = sorted(
            (t.number_of_nodes(), t.number_of_edges()) for t in trusses
        )
        print(f"k={k}: {len(trusses)} maximal local trusses "
              f"(largest: {sizes[-1][0]} nodes / {sizes[-1][1]} edges)")
        if args.verbose:
            for t in trusses:
                print(f"    nodes={sorted(map(str, t.nodes()))}")
    if partial.degraded or not partial.complete:
        print(partial.summary())
    return 0


def _cmd_nucleus(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph, args.seed)
    with InterruptGuard() as guard:
        progress, watchdog = _make_progress(guard, args)
        partial = run_nucleus(
            graph, args.r, args.s, args.gamma, method=args.method,
            budget=_make_budget(args), checkpoint_dir=args.checkpoint,
            resume=args.resume, progress=progress, workers=args.workers,
            task_timeout=args.task_timeout,
            task_cpu_timeout=args.task_cpu_timeout,
            max_task_retries=args.max_task_retries,
        )
    if watchdog is not None:
        print(watchdog.status())
    result = partial.result
    print(f"({args.r},{args.s})-nucleus gamma={args.gamma} "
          f"cliques={len(result.scores)} k_max={result.k_max}")
    for k in range(2, result.k_max + 1):
        cliques = result.nucleus_cliques(k)
        edges = result.nucleus_edges(k)
        nodes = {w for cell in cliques for w in cell}
        print(f"k={k}: {len(cliques)} r-cliques over {len(nodes)} nodes / "
              f"{len(edges)} edges")
        if args.verbose:
            for cell in sorted(cliques, key=lambda c: tuple(map(str, c))):
                print(f"    {tuple(map(str, cell))} "
                      f"nu={result.scores[cell]}")
    if partial.degraded or not partial.complete:
        print(partial.summary())
    return 0


def _cmd_global(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph, args.seed)
    with InterruptGuard() as guard:
        progress, watchdog = _make_progress(guard, args)
        partial = run_global(
            graph, args.gamma, epsilon=args.epsilon, delta=args.delta,
            method=args.method, seed=args.seed, max_k=args.max_k,
            max_states=args.max_states,
            batch_size=args.batch_size, budget=_make_budget(args),
            checkpoint_dir=args.checkpoint, resume=args.resume,
            progress=progress, workers=args.workers,
            task_timeout=args.task_timeout,
            task_cpu_timeout=args.task_cpu_timeout,
            max_task_retries=args.max_task_retries,
            on_memory_pressure=args.on_memory_pressure,
            spill_dir=args.spill_dir,
        )
    if watchdog is not None:
        print(watchdog.status())
    result = partial.result
    if result is None:
        print(partial.summary())
        return 1
    print(f"gamma={args.gamma} method={result.method} "
          f"N={result.n_samples} k_max={result.k_max}")
    for k in sorted(result.trusses):
        trusses = result.trusses[k]
        print(f"k={k}: {len(trusses)} maximal approximate global trusses")
        if args.verbose:
            for t in trusses:
                print(f"    nodes={sorted(map(str, t.nodes()))} "
                      f"density={probabilistic_density(t):.4f}")
    if partial.degraded or not partial.complete:
        print(partial.summary())
    return 0


def _cmd_frontier(args: argparse.Namespace) -> int:
    from repro.core.frontier import truss_frontier

    graph = _load_graph(args.graph, args.seed)
    frontier = truss_frontier(graph)
    print(f"structural k_max = {frontier.k_max}")
    if args.edge:
        u, v = args.edge
        node_u: object = u
        node_v: object = v
        if not graph.has_edge(node_u, node_v):
            try:
                node_u, node_v = int(u), int(v)
            except ValueError:
                pass
        if not graph.has_edge(node_u, node_v):
            raise SystemExit(f"error: edge ({u!r}, {v!r}) is not in the graph")
        print(f"edge ({u}, {v}) cohesion/confidence curve:")
        for k, gamma in frontier.edge_profile(node_u, node_v):
            print(f"  k={k}: gamma_k = {gamma:.6g}")
    else:
        for k in range(3, frontier.k_max + 1):
            for gamma in (0.2, 0.5, 0.8):
                trusses = frontier.maximal_trusses(k, gamma)
                if trusses:
                    largest = max(t.number_of_nodes() for t in trusses)
                    print(f"k={k} gamma={gamma}: {len(trusses)} maximal "
                          f"trusses (largest {largest} nodes)")
    return 0


def _cmd_modules(args: argparse.Namespace) -> int:
    from repro.apps.modules import detect_modules

    graph = _load_graph(args.graph, args.seed)
    modules = detect_modules(
        graph, args.gamma, min_k=args.min_k, min_nodes=args.min_nodes,
        refine_global=args.refine, seed=args.seed,
        max_modules=args.top,
    )
    print(f"{len(modules)} modules (gamma={args.gamma}, "
          f"min_k={args.min_k}{', globally refined' if args.refine else ''})")
    for i, m in enumerate(modules, start=1):
        print(f"{i:>3}. k={m.k} kind={m.kind} members={m.n_nodes} "
              f"edges={m.n_edges} density={m.density:.3f} "
              f"pcc={m.pcc:.3f} score={m.score:.3f}")
        if args.verbose:
            print(f"     {sorted(map(str, m.nodes))}")
    return 0


def _cmd_clique(args: argparse.Namespace) -> int:
    from repro.apps.cliques import (
        clique_probability,
        maximum_clique,
        maximum_reliable_clique,
    )

    graph = _load_graph(args.graph, args.seed)
    clique = maximum_clique(graph)
    prob = clique_probability(graph, clique) if len(clique) >= 2 else 1.0
    print(f"maximum clique: {len(clique)} nodes "
          f"(existence probability {prob:.4f})")
    if args.verbose:
        print(f"  {sorted(map(str, clique))}")
    if args.gamma is not None:
        reliable, rprob = maximum_reliable_clique(graph, args.gamma)
        print(f"largest clique with probability >= {args.gamma}: "
              f"{len(reliable)} nodes (probability {rprob:.4f})")
        if args.verbose and reliable:
            print(f"  {sorted(map(str, reliable))}")
    return 0


def _cmd_community(args: argparse.Namespace) -> int:
    from repro.apps.community import community_hierarchy

    graph = _load_graph(args.graph, args.seed)
    node: object = args.node
    if not graph.has_node(node):
        try:
            node = int(args.node)
        except ValueError:
            pass
    if not graph.has_node(node):
        raise SystemExit(f"error: node {args.node!r} is not in the graph")
    hierarchy = community_hierarchy(graph, node, args.gamma)
    if not hierarchy:
        print(f"node {args.node!r}: no community at gamma={args.gamma}")
        return 0
    print(f"community hierarchy of {args.node!r} (gamma={args.gamma}):")
    for k in sorted(hierarchy):
        c = hierarchy[k]
        print(f"  k={k}: {c.number_of_nodes()} nodes, "
              f"{c.number_of_edges()} edges")
        if args.verbose:
            print(f"     {sorted(map(str, c.nodes()))}")
    return 0


def _cmd_reliability(args: argparse.Namespace) -> int:
    from repro.core.reliability import network_reliability_exact

    graph = _load_graph(args.graph, args.seed)
    with InterruptGuard() as guard:
        progress, watchdog = _make_progress(guard, args)
        partial = run_reliability(
            graph, n_samples=args.samples, seed=args.seed,
            budget=_make_budget(args), checkpoint_dir=args.checkpoint,
            resume=args.resume, progress=progress, workers=args.workers,
            task_timeout=args.task_timeout,
            task_cpu_timeout=args.task_cpu_timeout,
            max_task_retries=args.max_task_retries,
        )
    if watchdog is not None:
        print(watchdog.status())
    if partial.result is None:
        print(partial.summary())
        return 1
    print(f"Monte-Carlo reliability ({partial.n_samples_drawn} samples): "
          f"{partial.result:.4f}")
    if graph.number_of_edges() <= 22:
        exact = network_reliability_exact(graph)
        print(f"exact reliability: {exact:.6f}")
    if partial.degraded or not partial.complete:
        print(partial.summary())
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.graphs.export import hierarchy_to_json, to_dot, write_gexf
    from repro.truss.decomposition import truss_decomposition

    graph = _load_graph(args.graph, args.seed)
    if args.format == "dot":
        tau = truss_decomposition(graph)
        text = to_dot(graph, trussness=tau)
        if args.output:
            Path(args.output).write_text(text, encoding="utf-8")
        else:
            print(text, end="")
    elif args.format == "gexf":
        if not args.output:
            raise SystemExit("error: --output is required for gexf")
        tau = truss_decomposition(graph)
        write_gexf(graph, args.output, trussness=tau)
    else:  # hierarchy
        result = local_truss_decomposition(graph, args.gamma)
        text = hierarchy_to_json(result)
        if args.output:
            Path(args.output).write_text(text, encoding="utf-8")
        else:
            print(text)
    return 0


def _cmd_gamma(args: argparse.Namespace) -> int:
    from repro.core.gamma_decomp import gamma_truss_decomposition

    graph = _load_graph(args.graph, args.seed)
    result = gamma_truss_decomposition(graph, args.k)
    thresholds = result.thresholds()
    print(f"k={args.k}: {len(thresholds)} distinct gamma thresholds")
    shown = thresholds if args.verbose else thresholds[: args.top]
    for gamma in shown:
        trusses = result.maximal_trusses_at(gamma)
        largest = max(t.number_of_nodes() for t in trusses)
        print(f"gamma >= {gamma:.6g}: {len(trusses)} maximal trusses "
              f"(largest: {largest} nodes)")
    if not args.verbose and len(thresholds) > args.top:
        print(f"... {len(thresholds) - args.top} more (use --verbose)")
    return 0


def _cmd_team(args: argparse.Namespace) -> int:
    from repro.apps.team_formation import (
        generate_collaboration_network,
        team_by_eta_core,
        team_by_global_truss,
        team_by_local_truss,
    )

    network = generate_collaboration_network(seed=args.seed)
    query = list(args.query)
    task_graph = network.task_graph(args.keywords)
    print(f"query={query} keywords={args.keywords} gamma={args.gamma}")

    local = team_by_local_truss(task_graph, query, args.gamma)
    if local is None:
        print("local truss: no team found")
    else:
        print(f"local truss:  k={local.k} members={local.n_members} "
              f"edges={local.n_edges} density={local.density:.4f} "
              f"pcc={local.pcc:.4f}")
    for team in team_by_global_truss(task_graph, query, args.gamma,
                                     seed=args.seed)[:3]:
        print(f"global truss: k={team.k} members={team.n_members} "
              f"edges={team.n_edges} density={team.density:.4f} "
              f"pcc={team.pcc:.4f} contains_query={team.contains_query}")
    core = team_by_eta_core(task_graph, query, args.gamma)
    if core is None:
        print("eta-core: no team found")
    else:
        print(f"eta-core:     k={core.k} members={core.n_members} "
              f"edges={core.n_edges} density={core.density:.4f} "
              f"pcc={core.pcc:.4f}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ServeConfig, serve

    config = ServeConfig(
        state_dir=args.state_dir,
        host=args.host,
        port=args.port,
        seed=args.seed,
        workers=args.workers,
        default_deadline=args.default_deadline,
        max_deadline=args.max_deadline,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        grace=args.grace,
        breaker_threshold=args.breaker_threshold,
        backoff_base=args.backoff_base,
        backoff_cap=args.backoff_cap,
        watchdog_interval=args.watchdog,
        max_memory_mb=args.max_memory,
        min_free_mb=args.min_free,
        batch_size=args.batch_size,
        build_throttle=args.build_throttle,
        trace=args.trace,
    )
    return serve(config)


def _changed_py_files(ref: str) -> list[Path] | None:
    """Python files changed vs ``ref`` plus untracked ones, as absolute
    paths; None when the current directory is not inside a git checkout
    (the caller falls back to a full lint)."""
    import subprocess

    def git(*argv: str):
        return subprocess.run(
            ["git", *argv], capture_output=True, text=True, check=False)

    probe = git("rev-parse", "--show-toplevel")
    if probe.returncode != 0:
        return None
    toplevel = Path(probe.stdout.strip())
    diff = git("diff", "--name-only", "--diff-filter=d", ref, "--")
    if diff.returncode != 0:
        raise ParameterError(
            f"git diff against {ref!r} failed: "
            f"{diff.stderr.strip() or 'unknown git error'}")
    untracked = git("ls-files", "--others", "--exclude-standard")
    names = set(diff.stdout.splitlines())
    if untracked.returncode == 0:
        names |= set(untracked.stdout.splitlines())
    return sorted(
        toplevel / name for name in names if name.endswith(".py"))


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import render_json, render_text, run_lint

    if args.paths:
        paths = list(args.paths)
    else:
        # Default to the tree the CI gate lints, relative to cwd;
        # only complain when *nothing* is found.
        paths = [p for p in ("src/repro", "benchmarks", "examples")
                 if Path(p).exists()]
        if not paths:
            raise ParameterError(
                "no lint paths given and none of src/repro, "
                "benchmarks, examples exist under the current "
                "directory"
            )
    if args.changed is not None:
        changed = _changed_py_files(args.changed)
        if changed is None:
            print("repro lint: not inside a git checkout; --changed "
                  "ignored, running a full lint", file=sys.stderr)
        else:
            roots = [Path(p).resolve() for p in paths]
            paths = [
                str(file) for file in changed
                if file.exists() and any(
                    file.resolve() == root or root in file.resolve().parents
                    for root in roots)
            ]
            if not paths:
                print(f"0 changed file(s) vs {args.changed} under the "
                      "lint paths; clean")
                return 0
    select = None
    if args.select:
        select = [token.strip() for chunk in args.select
                  for token in chunk.split(",") if token.strip()]
    result = run_lint(paths, select=select)
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return 0 if result.clean else 1


def _add_runtime_options(p: argparse.ArgumentParser) -> None:
    """Robustness options shared by the long-running subcommands."""
    g = p.add_argument_group("robustness")
    g.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                   help="wall-clock budget; on breach, return an honestly "
                        "degraded partial result instead of failing")
    g.add_argument("--max-samples", type=int, default=None, metavar="N",
                   help="cap on Monte-Carlo samples actually drawn")
    g.add_argument("--max-memory", type=float, default=None, metavar="MIB",
                   help="peak-RSS budget in MiB checked at batch "
                        "boundaries; on breach the run degrades (or, for "
                        "'global' with --on-memory-pressure spill, moves "
                        "its samples to disk)")
    g.add_argument("--watchdog", type=float, default=None, metavar="SECONDS",
                   help="probe memory/disk/CPU pressure at most every "
                        "SECONDS during the run, emit resource-pressure "
                        "events, and print a one-line summary at the end")
    g.add_argument("--checkpoint", default=None, metavar="DIR",
                   help="write resumable snapshots to DIR at every batch "
                        "boundary")
    g.add_argument("--resume", action="store_true",
                   help="continue from the checkpoint in --checkpoint DIR "
                        "(bit-identical to an uninterrupted run)")


def _add_workers_option(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workers", type=_workers_arg, default=None, metavar="N",
                   help="fan compute-bound stages across N worker processes "
                        "('auto' = CPU count); output is bit-identical for "
                        "every N >= 1, but differs from omitting the flag — "
                        "see docs/performance.md")
    p.add_argument("--task-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="kill a worker that holds one parallel task longer "
                        "than this and retry the task (default: no timeout); "
                        "see docs/robustness.md")
    p.add_argument("--task-cpu-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="kill a worker whose CPU clock stands still for "
                        "this many wall seconds while it holds a task "
                        "(wedged), but keep extending grace while CPU "
                        "advances (merely busy); default: no CPU "
                        "supervision")
    p.add_argument("--max-task-retries", type=int, default=None, metavar="K",
                   help="crashes/timeouts one task payload survives before "
                        "it is quarantined and the run degrades around it "
                        "(default 2)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Truss decomposition of probabilistic graphs "
                    "(SIGMOD 2016 reproduction)",
    )
    parser.add_argument("--seed", type=int, default=42,
                        help="RNG seed for datasets and sampling")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("datasets", help="list bundled synthetic datasets")
    p.add_argument("--write", metavar="DIR", default=None,
                   help="materialise all datasets as edge lists in DIR")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--compress", action="store_true",
                   help="gzip the written edge lists")
    p.set_defaults(func=_cmd_datasets)

    p = sub.add_parser("stats", help="graph statistics (Table 1 columns)")
    p.add_argument("graph", help="dataset name or graph file")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("local", help="local (k, gamma)-truss decomposition")
    p.add_argument("graph", help="dataset name or graph file")
    p.add_argument("--gamma", type=float, required=True)
    p.add_argument("--method", choices=["dp", "baseline"], default="dp")
    p.add_argument("--verbose", action="store_true")
    _add_runtime_options(p)
    _add_workers_option(p)
    p.set_defaults(func=_cmd_local)

    p = sub.add_parser(
        "nucleus",
        help="probabilistic (r, s)-nucleus decomposition "
             "((2,3) = truss oracle, (3,4) = triangles in 4-cliques)",
    )
    p.add_argument("graph", help="dataset name or graph file")
    p.add_argument("--gamma", type=float, required=True)
    p.add_argument("--r", type=int, default=3, dest="r",
                   help="clique size being scored (2 or 3; default 3)")
    p.add_argument("--s", type=int, default=4, dest="s",
                   help="supporting clique size (must be r + 1; default 4)")
    p.add_argument("--method", choices=["dp", "baseline"], default="dp")
    p.add_argument("--verbose", action="store_true")
    _add_runtime_options(p)
    _add_workers_option(p)
    p.set_defaults(func=_cmd_nucleus)

    p = sub.add_parser("global", help="global (k, gamma)-truss decomposition")
    p.add_argument("graph", help="dataset name or graph file")
    p.add_argument("--gamma", type=float, required=True)
    p.add_argument("--epsilon", type=float, default=0.1)
    p.add_argument("--delta", type=float, default=0.1)
    p.add_argument("--method", choices=["gbu", "gtd"], default="gbu")
    p.add_argument("--max-k", type=int, default=None)
    p.add_argument("--max-states", type=int, default=None,
                   help="abort the exact GTD search once one component's "
                        "explored state closure exceeds this many residual "
                        "subgraphs (default: the library's built-in cap)")
    p.add_argument("--batch-size", type=int, default=25,
                   help="sampling rows per checkpoint/budget boundary")
    p.add_argument("--on-memory-pressure", choices=["abort", "spill"],
                   default="spill",
                   help="what a memory-budget breach during sampling does: "
                        "'spill' (default) moves the packed samples to a "
                        "read-only disk mapping and keeps the output "
                        "byte-identical; 'abort' stops sampling early and "
                        "degrades the accuracy bound")
    p.add_argument("--spill-dir", default=None, metavar="DIR",
                   help="directory for spilled sample files (default: a "
                        "private temp directory, removed after the run)")
    p.add_argument("--verbose", action="store_true")
    _add_runtime_options(p)
    _add_workers_option(p)
    p.set_defaults(func=_cmd_global)

    p = sub.add_parser(
        "frontier",
        help="full (k, gamma) truss frontier; optionally one edge's curve",
    )
    p.add_argument("graph", help="dataset name or graph file")
    p.add_argument("--edge", nargs=2, metavar=("U", "V"), default=None,
                   help="print the cohesion/confidence curve of one edge")
    p.set_defaults(func=_cmd_frontier)

    p = sub.add_parser("modules", help="detect and rank cohesive modules")
    p.add_argument("graph", help="dataset name or graph file")
    p.add_argument("--gamma", type=float, required=True)
    p.add_argument("--min-k", type=int, default=3)
    p.add_argument("--min-nodes", type=int, default=3)
    p.add_argument("--refine", action="store_true",
                   help="refine with the global decomposition (GBU)")
    p.add_argument("--top", type=int, default=20)
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(func=_cmd_modules)

    p = sub.add_parser("clique", help="maximum (reliable) clique")
    p.add_argument("graph", help="dataset name or graph file")
    p.add_argument("--gamma", type=float, default=None,
                   help="also find the largest gamma-reliable clique")
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(func=_cmd_clique)

    p = sub.add_parser("community", help="truss community search")
    p.add_argument("graph", help="dataset name or graph file")
    p.add_argument("node", help="query node label")
    p.add_argument("--gamma", type=float, required=True)
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(func=_cmd_community)

    p = sub.add_parser("reliability", help="network reliability estimate")
    p.add_argument("graph", help="dataset name or graph file")
    p.add_argument("--samples", type=int, default=2000)
    _add_runtime_options(p)
    _add_workers_option(p)
    p.set_defaults(func=_cmd_reliability)

    p = sub.add_parser("export", help="export a graph for visualization")
    p.add_argument("graph", help="dataset name or graph file")
    p.add_argument("--format", choices=["dot", "gexf", "hierarchy"],
                   default="dot")
    p.add_argument("--gamma", type=float, default=0.5,
                   help="gamma for the hierarchy format (default 0.5)")
    p.add_argument("--output", default=None, help="output file (default stdout)")
    p.set_defaults(func=_cmd_export)

    p = sub.add_parser(
        "gamma",
        help="fixed-k decomposition over all gamma thresholds (paper §7)",
    )
    p.add_argument("graph", help="dataset name or graph file")
    p.add_argument("--k", type=int, required=True)
    p.add_argument("--top", type=int, default=10,
                   help="show only the top thresholds (default 10)")
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(func=_cmd_gamma)

    p = sub.add_parser(
        "lint",
        help="static invariant checker (determinism, parallel safety, "
             "progress/exception protocols)",
    )
    p.add_argument("paths", nargs="*",
                   help="files or directories to lint (default: "
                        "src/repro benchmarks examples)")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--select", action="append", metavar="RULES",
                   default=None,
                   help="comma-separated rule ids or families to check "
                        "(e.g. DET001,EXC003 or CONC); default: all "
                        "rules")
    p.add_argument("--changed", nargs="?", const="HEAD", default=None,
                   metavar="REF",
                   help="lint only files changed vs the given git ref "
                        "(default HEAD) — fast pre-commit runs; falls "
                        "back to a full lint outside a git checkout")
    p.add_argument("--verbose", action="store_true",
                   help="also list suppressed findings with their "
                        "pragma justifications")
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "serve",
        help="fault-tolerant HTTP query service over persistent "
             "decomposition indexes (see docs/serving.md)",
    )
    p.add_argument("--state-dir", required=True, metavar="DIR",
                   help="directory holding the persistent indexes and "
                        "build checkpoints; a warm restart resumes "
                        "interrupted builds from here byte-identically")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (default 0 = ephemeral; the bound "
                        "address is printed on startup)")
    p.add_argument("--workers", type=_workers_arg, default=None, metavar="N",
                   help="worker processes for background index builds "
                        "('auto' = CPU count); results are bit-identical "
                        "for every N")
    p.add_argument("--default-deadline", type=float, default=5.0,
                   metavar="SECONDS",
                   help="per-request deadline when the client sends none; "
                        "slow queries return honestly degraded partial "
                        "payloads instead of hanging")
    p.add_argument("--max-deadline", type=float, default=60.0,
                   metavar="SECONDS",
                   help="ceiling on client-requested ?deadline= values")
    p.add_argument("--max-inflight", type=int, default=8,
                   help="requests processed concurrently before arrivals "
                        "queue")
    p.add_argument("--max-queue", type=int, default=16,
                   help="requests allowed to queue for a slot; beyond "
                        "this, arrivals are shed with 503 + Retry-After")
    p.add_argument("--grace", type=float, default=10.0, metavar="SECONDS",
                   help="drain budget on SIGTERM/SIGINT: finish in-flight "
                        "requests and checkpoint the in-progress build "
                        "within this window, then exit 143/130")
    p.add_argument("--breaker-threshold", type=int, default=3,
                   help="consecutive build failures before an index's "
                        "circuit breaker opens and rebuilds back off "
                        "exponentially")
    p.add_argument("--backoff-base", type=float, default=0.5,
                   metavar="SECONDS",
                   help="initial rebuild backoff when a breaker opens "
                        "(doubles per failure, capped)")
    p.add_argument("--backoff-cap", type=float, default=30.0,
                   metavar="SECONDS",
                   help="ceiling on the breaker's exponential rebuild "
                        "backoff")
    p.add_argument("--watchdog", type=float, default=None, metavar="SECONDS",
                   help="probe memory/disk pressure at this cadence and "
                        "shed requests (503) while thresholds are "
                        "exceeded")
    p.add_argument("--max-memory", type=float, default=None, metavar="MIB",
                   help="peak-RSS pressure threshold for --watchdog "
                        "shedding")
    p.add_argument("--min-free", type=float, default=None, metavar="MIB",
                   help="free-disk pressure threshold for --watchdog "
                        "shedding")
    p.add_argument("--batch-size", type=int, default=25,
                   help="sampling rows per checkpoint boundary in "
                        "background builds")
    p.add_argument("--build-throttle", type=float, default=0.0,
                   metavar="SECONDS",
                   help="sleep this long per sample batch during builds "
                        "(testing aid: makes a kill land mid-build "
                        "deterministically)")
    p.add_argument("--trace", action="store_true",
                   help="print one line per service event (request, "
                        "response, shed, build, breaker, drain)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("team", help="task-driven team formation case study")
    p.add_argument("--query", nargs="+",
                   default=["Jeffrey D. Ullman", "Piotr Indyk"])
    p.add_argument("--keywords", nargs="+", default=["data", "algorithm"])
    p.add_argument("--gamma", type=float, default=1e-3)
    p.set_defaults(func=_cmd_team)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    An interrupted computation (cooperative) exits with the signal's
    conventional status — 130 for SIGINT, 143 for SIGTERM — and a
    one-line pointer to the checkpoint instead of a traceback; a corrupt
    or malformed input graph exits 2 with the parser's diagnostic.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ComputationInterrupted as err:
        where = err.checkpoint_path
        if where:
            print(f"interrupted — partial results at {where}",
                  file=sys.stderr)
        else:
            print("interrupted — no checkpoint written "
                  "(rerun with --checkpoint DIR to make runs resumable)",
                  file=sys.stderr)
        return getattr(err, "exit_code", None) or 130
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except (DatasetError, CheckpointError, ParameterError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
