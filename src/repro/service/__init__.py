"""``repro.service`` — the fault-tolerant ``repro serve`` query service.

A long-running, stdlib-only HTTP server answering truss-decomposition
queries from persistent indexes of precomputed results, with background
builds running through the execution harness. See ``docs/serving.md``
for the endpoint reference and the robustness contract (admission
control, per-request deadlines, circuit breakers, graceful drain).
"""

from repro.service.admission import AdmissionController
from repro.service.breaker import CircuitBreaker
from repro.service.builder import IndexBuilder
from repro.service.server import ServeConfig, TrussService, serve
from repro.service.store import IndexEntry, IndexKey, IndexStore

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "IndexBuilder",
    "IndexEntry",
    "IndexKey",
    "IndexStore",
    "ServeConfig",
    "TrussService",
    "serve",
]
