"""Background index builds for the ``repro serve`` service.

One :class:`IndexBuilder` thread owns every build: requests enqueue a
token, the thread runs the decomposition through the existing execution
harness (:func:`~repro.runtime.harness.run_global` /
:func:`~repro.runtime.harness.run_local`) with ``resume=True`` against
the index's checkpoint directory, and commits the canonical result
bytes through the :class:`~repro.service.store.IndexStore`.

Failure handling is where the robustness lives:

* build exceptions and supervision *strikes* (``worker-died`` /
  ``task-quarantined`` events observed during the build) feed the
  index's :class:`~repro.service.breaker.CircuitBreaker`; once it
  opens, rebuilds are suppressed for an exponentially growing backoff
  while queries keep being served from the last good result, marked
  degraded;
* a drain (:meth:`stop`) triggers the builder's cooperative
  :class:`~repro.runtime.interrupts.InterruptGuard`, so the in-flight
  build raises at the next batch boundary *after* its checkpoint was
  written — the index is marked ``interrupted`` and a warm restart
  resumes it byte-identically.
"""

from __future__ import annotations

import signal
import threading
import time
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.exceptions import ComputationInterrupted, ReproError
from repro.runtime.interrupts import InterruptGuard

if TYPE_CHECKING:
    from repro.runtime.progress import ProgressEvent
    from repro.service.server import TrussService
    from repro.service.store import IndexEntry

__all__ = ["IndexBuilder"]

#: Supervision phases counted as strikes against an index's breaker.
_STRIKE_PHASES = ("worker-died", "task-quarantined")


class IndexBuilder:
    """Single background thread draining a queue of index builds."""

    def __init__(self, service: "TrussService",
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.service = service
        self._clock = clock
        self._cond = threading.Condition(threading.Lock())
        #: token -> earliest monotonic time the build may start.
        self._queue: dict[str, float] = {}  # repro: guarded-by[self._cond]
        self._stopping = False  # repro: guarded-by[self._cond]
        self._thread: threading.Thread | None = None
        #: Cooperative abort for the in-flight harness run; a drain
        #: triggers it with the delivered signal number.
        self.guard = InterruptGuard(install=False)
        self.stats = {"builds": 0, "failures": 0, "interrupted": 0}  # repro: owned-by[builder]

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-builder", daemon=True)
        self._thread.start()

    def request(self, token: str, delay: float = 0.0) -> bool:
        """Enqueue a build unless one is already queued; True if added."""
        with self._cond:
            if self._stopping or token in self._queue:
                return False
            self._queue[token] = self._clock() + max(0.0, delay)
            self.service.emit("service-build", self.stats["builds"],
                              {"token": token, "action": "queued"})
            self._cond.notify_all()
            return True

    def stop(self, signum: int = signal.SIGTERM, grace: float = 10.0) -> None:
        """Drain: abort the in-flight build cooperatively and join."""
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        self.guard.trigger(signum)
        if self._thread is not None:
            self._thread.join(timeout=grace)

    def pending(self) -> int:
        with self._cond:
            return len(self._queue)

    def _next_token(self) -> str | None:
        """Block until a due job or stop; None means shut down."""
        with self._cond:
            while True:
                if self._stopping:
                    return None
                now = self._clock()
                due = [t for t, at in sorted(self._queue.items())
                       if at <= now]
                if due:
                    token = due[0]
                    del self._queue[token]
                    return token
                if self._queue:
                    sleep = min(self._queue.values()) - now
                    self._cond.wait(max(0.01, min(sleep, 0.5)))
                else:
                    self._cond.wait(0.5)

    # repro: owned-by[builder]
    def _run(self) -> None:
        while True:
            token = self._next_token()
            if token is None:
                return
            try:
                self._build(token)
            except Exception as err:  # repro: allow[EXC003] last-resort guard: a store commit failing outside _build's try block (ENOSPC / read-only disk in mark_building, complete, fail, interrupt) must not kill the build loop — the HTTP server would keep accepting while no index ever builds again
                self._crashed(token, err)

    def _crashed(self, token: str, err: Exception) -> None:
        """Record a crash that escaped :meth:`_build` and back off.

        The strike requeues the token with the breaker's backoff, so a
        transient disk condition heals on its own once space returns.
        """
        self.stats["failures"] += 1
        reason = f"{type(err).__name__}: {err}"
        self.service.emit("service-build", self.stats["builds"],
                          {"token": token, "action": "crashed",
                           "reason": reason})
        entry = self.service.store.get(token)
        if entry is not None:
            self._strike(entry, reason)

    def _build(self, token: str) -> None:
        service = self.service
        entry = service.store.get(token)
        if entry is None:
            return
        breaker = entry.breaker
        if breaker is not None and not breaker.allow():
            # Opened while queued; come back when the backoff expires.
            self.request(token, delay=breaker.retry_after())
            return
        service.store.mark_building(token)
        self.stats["builds"] += 1
        service.emit("service-build", self.stats["builds"],
                     {"token": token, "action": "started"})
        strikes = {"count": 0}

        def count_strikes(event: ProgressEvent) -> None:
            if event.phase in _STRIKE_PHASES:
                strikes["count"] += 1

        try:
            partial = service.run_build(
                entry, extra_hooks=(count_strikes, self.guard.check))
        except ComputationInterrupted:
            self.stats["interrupted"] += 1
            service.store.interrupt(token)
            service.emit("service-build", self.stats["builds"],
                         {"token": token, "action": "interrupted"})
            return
        except (ReproError, MemoryError, OSError) as err:
            self._note_failure(entry, f"{type(err).__name__}: {err}")
            return
        if partial is None or partial.result is None:
            reason = (partial.reason if partial is not None else None)
            self._note_failure(entry, reason or "build produced no result")
            return
        payload, result_bytes = service.payload_of(entry.key, partial)
        service.store.complete(
            token, payload, result_bytes,
            degraded=partial.degraded, reason=partial.reason)
        service.emit("service-build", self.stats["builds"],
                     {"token": token, "action": "finished",
                      "degraded": partial.degraded})
        if breaker is not None:
            if strikes["count"]:
                # The result landed, but workers died or payloads were
                # quarantined getting there: strike the breaker so
                # repeat offenders stop being rebuilt eagerly.
                self._strike(entry, f"{strikes['count']} supervision "
                                    "events during build")
            else:
                before = breaker.state
                breaker.record_success()
                if before != "closed":
                    service.emit("service-breaker", breaker.failures,
                                 {"token": token, "state": "closed",
                                  "failures": 0, "retry_after": 0.0})

    def _note_failure(self, entry: IndexEntry, reason: str) -> None:
        self.stats["failures"] += 1
        self.service.store.fail(entry.token, reason)
        self.service.emit("service-build", self.stats["builds"],
                          {"token": entry.token, "action": "failed",
                           "reason": reason})
        self._strike(entry, reason)

    def _strike(self, entry: IndexEntry, reason: str) -> None:
        breaker = entry.breaker
        if breaker is None:
            return
        before = breaker.state
        state = breaker.record_failure()
        if state != before:
            self.service.emit(
                "service-breaker", breaker.failures,
                {"token": entry.token, "state": state,
                 "failures": breaker.failures,
                 "retry_after": round(breaker.retry_after(), 3),
                 "reason": reason})
        if state == "closed":
            # Under the threshold: retry soon.
            self.request(entry.token, delay=breaker.backoff_base)
        else:
            self.request(entry.token, delay=breaker.retry_after())
