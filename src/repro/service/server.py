"""The ``repro serve`` HTTP query service.

A :class:`TrussService` answers decomposition queries from an
:class:`~repro.service.store.IndexStore` of precomputed results, building
missing indexes in the background through the existing execution harness.
The HTTP layer is a stdlib :class:`~http.server.ThreadingHTTPServer` —
no new dependencies — and every robustness mechanism in the runtime is
wired in:

* per-request **deadlines** become :class:`~repro.runtime.Budget`
  objects for inline computations, so a slow query returns an honestly
  ``degraded`` partial payload instead of hanging;
* **admission control** (:class:`~repro.service.admission.AdmissionController`)
  sheds load with typed ``503`` + ``Retry-After`` once the in-flight
  limit and bounded queue are exceeded, or when the
  :class:`~repro.runtime.pressure.ResourceWatchdog` reports pressure;
* a per-index **circuit breaker**
  (:class:`~repro.service.breaker.CircuitBreaker`) suppresses rebuilds
  of repeatedly-failing indexes while the last good cached result keeps
  being served, marked ``degraded``;
* **graceful drain** on SIGINT/SIGTERM: stop accepting, finish
  in-flight requests within a grace period, checkpoint the in-progress
  build, and exit with the conventional 130/143 status — a warm restart
  resumes the build byte-identically.

Error responses are JSON bodies whose status codes come from the single
:data:`~repro.exceptions.HTTP_STATUS_BY_ERROR` table; see
``docs/serving.md`` for the endpoint reference.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.exceptions import (
    IndexUnavailableError,
    OverloadedError,
    ParameterError,
    ReproError,
    http_status_of,
)
from repro.runtime import Budget, InterruptGuard, chain_hooks
from repro.runtime.progress import ProgressEvent
from repro.service.admission import AdmissionController
from repro.service.breaker import CircuitBreaker
from repro.service.builder import IndexBuilder
from repro.service.store import IndexEntry, IndexKey, IndexStore

if TYPE_CHECKING:
    from repro.apps.team_formation import CollaborationNetwork
    from repro.graphs.probabilistic import ProbabilisticGraph
    from repro.runtime.result import PartialResult

__all__ = ["ServeConfig", "TrussService", "serve"]


def _mib(value: float | None) -> int | None:
    return None if value is None else int(value * 1024 * 1024)


@dataclass
class ServeConfig:
    """Knobs of one ``repro serve`` process (CLI flags map 1:1)."""

    state_dir: str
    host: str = "127.0.0.1"
    port: int = 0
    seed: int = 42
    workers: int | str | None = None
    default_deadline: float = 5.0
    max_deadline: float = 60.0
    max_inflight: int = 8
    max_queue: int = 16
    grace: float = 10.0
    breaker_threshold: int = 3
    backoff_base: float = 0.5
    backoff_cap: float = 30.0
    watchdog_interval: float | None = None
    max_memory_mb: float | None = None
    min_free_mb: float | None = None
    batch_size: int = 25
    #: Seconds slept per sample batch during builds; tests raise it so a
    #: SIGTERM reliably lands mid-build.
    build_throttle: float = 0.0
    trace: bool = False
    extra: dict = field(default_factory=dict)


class _FaultCarrier:
    """Side-band bridge from the service's fault plans to the harness.

    Build events reach the plans through :meth:`TrussService.emit_event`
    (single delivery); this no-op hook only *exposes* them via
    ``.hooks`` so the harness's recursive ``_pool_faults_of`` /
    ``_disk_faults_of`` discovery finds armed ``kill_worker`` /
    ``exhaust_disk`` faults and routes them into the worker pool and
    the checkpoint store of background index builds.
    """

    def __init__(self, plans: tuple) -> None:
        self.hooks = tuple(plans)

    def __call__(self, event: ProgressEvent) -> None:
        pass


def _fault_sources(
        progress: Callable[[ProgressEvent], None] | None) -> tuple:
    """Hooks in ``progress`` that carry service fault tokens.

    Mirrors the harness's ``_pool_faults_of``: walks one level of
    ``chain_hooks`` composition looking for ``take_service_fault``.
    """
    if progress is None:
        return ()
    hooks = getattr(progress, "hooks", None) or (progress,)
    return tuple(h for h in hooks
                 if callable(getattr(h, "take_service_fault", None)))


class TrussService:
    """The query service: dispatch, indexes, builds, and drain."""

    def __init__(self, config: ServeConfig,
                 progress: Callable[[ProgressEvent], None] | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config
        self._clock = clock
        self._progress = progress
        self._fault_plans = _fault_sources(progress)
        # Re-entrant: a watchdog alert raised *inside* emit_event (the
        # watchdog is itself an emit target) re-enters to deliver its
        # resource-pressure event.
        self._emit_lock = threading.RLock()
        self.store = IndexStore(f"{config.state_dir}/indexes")
        self.admission = AdmissionController(
            max_inflight=config.max_inflight, max_queue=config.max_queue,
            clock=clock)
        self.builder = IndexBuilder(self, clock=clock)
        self.watchdog = None
        if config.watchdog_interval is not None:
            from repro.runtime.pressure import ResourceWatchdog

            self.watchdog = ResourceWatchdog(
                probe_dir=config.state_dir,
                interval=config.watchdog_interval,
                memory_limit_bytes=_mib(config.max_memory_mb),
                min_free_bytes=_mib(config.min_free_mb),
                emit=self.emit_event, clock=clock,
                memory_probe=config.extra.get("memory_probe"),
            )
        self._graphs: dict = {}  # repro: guarded-by[self._graph_lock]
        self._graph_lock = threading.Lock()
        self._network = None  # repro: guarded-by[self._graph_lock]
        self.draining = False  # repro: owned-by[main]
        self._request_seq = 0  # repro: guarded-by[self._seq_lock]
        self._seq_lock = threading.Lock()
        self.http_server: ThreadingHTTPServer | None = None
        self._stats_lock = threading.Lock()
        # repro: guarded-by[self._stats_lock]
        self.stats = {"requests": 0, "responses": 0, "shed": 0,
                      "degraded_served": 0, "dropped_writes": 0}

    # ------------------------------------------------------------------
    # events
    def emit(self, phase: str, step: int, detail: dict) -> None:
        self.emit_event(ProgressEvent(phase, step, detail=detail))

    def emit_event(self, event: ProgressEvent) -> None:
        """Serialize event delivery: handler threads + builder share the
        trace stream and the (stateful) fault-plan hooks."""
        with self._emit_lock:
            if self.config.trace:
                print(f"[serve] {event.phase} step={event.step} "
                      f"{json.dumps(event.detail, sort_keys=True, default=str)}",
                      flush=True)
            if self._progress is not None:
                self._progress(event)
            if self.watchdog is not None:
                self.watchdog(event)

    def _take_fault(self, kind: str) -> float | None:
        for plan in self._fault_plans:
            value = plan.take_service_fault(kind)
            if value is not None:
                return value
        return None

    def _next_request_id(self) -> int:
        with self._seq_lock:
            self._request_seq += 1
            return self._request_seq

    def _bump(self, name: str) -> int:
        """Thread-safe stats increment; returns the new count.

        Handler threads race on these counters, and several double as
        progress-event steps — unlocked read-modify-write would both
        undercount and collide steps.
        """
        with self._stats_lock:
            self.stats[name] += 1
            return self.stats[name]

    # ------------------------------------------------------------------
    # lifecycle
    def start(self) -> None:
        """Warm start: reload indexes, requeue unfinished builds, bind."""
        pending = self.store.load()
        for entry in self.store.entries():
            self._arm_breaker(entry)
        self.builder.start()
        for entry in pending:
            self.builder.request(entry.token)
        self.http_server = _ServiceHTTPServer(
            (self.config.host, self.config.port), _Handler, self)

    @property
    def address(self) -> tuple[str, int]:
        host, port = self.http_server.server_address[:2]
        return host, port

    def drain(self, signum: int) -> int:
        """Graceful shutdown; returns the conventional exit code."""
        self.draining = True
        self.emit("service-drain", 0,
                  {"action": "begin", "in_flight": self.admission.inflight,
                   "signal": int(signum)})
        if self.http_server is not None:
            self.http_server.shutdown()
        idle = self.admission.wait_idle(self.config.grace)
        self.emit("service-drain", 1,
                  {"action": "idle", "in_flight": self.admission.inflight,
                   "timed_out": not idle})
        if self.http_server is not None:
            self.http_server.server_close()
        self.builder.stop(signum=signum, grace=self.config.grace)
        self.emit("service-drain", 2,
                  {"action": "done",
                   "pending_builds": self.builder.pending(),
                   "signal": int(signum)})
        return 128 + int(signum)

    # ------------------------------------------------------------------
    # graphs
    def _graph(self, spec: str) -> "ProbabilisticGraph":
        from repro.datasets import DATASET_NAMES, load_dataset
        from repro.exceptions import DatasetError
        from repro.graphs.io import read_edge_list, read_json_graph

        cache_key = (spec, self.config.seed)
        with self._graph_lock:
            if cache_key in self._graphs:
                return self._graphs[cache_key]
        if spec.lower() in DATASET_NAMES:
            graph = load_dataset(spec, seed=self.config.seed)
        else:
            from pathlib import Path

            path = Path(spec)
            if not path.exists():
                raise DatasetError(
                    f"{spec!r} is neither a dataset name nor an "
                    "existing graph file")
            if path.suffix == ".json":
                graph = read_json_graph(path)
            else:
                graph = read_edge_list(path)
        with self._graph_lock:
            self._graphs[cache_key] = graph
        return graph

    def _collaboration_network(self) -> "CollaborationNetwork":
        from repro.apps.team_formation import generate_collaboration_network

        with self._graph_lock:
            if self._network is None:
                self._network = generate_collaboration_network(
                    seed=self.config.seed)
            return self._network

    # ------------------------------------------------------------------
    # index builds (called from the builder thread)
    def _arm_breaker(self, entry: IndexEntry) -> None:
        if entry.breaker is None:
            entry.breaker = CircuitBreaker(
                threshold=self.config.breaker_threshold,
                backoff_base=self.config.backoff_base,
                backoff_cap=self.config.backoff_cap, clock=self._clock)

    def run_build(self, entry: IndexEntry,
                  extra_hooks: Iterable[Callable] = ()) -> "PartialResult":
        """Run one index build through the execution harness."""
        from repro.runtime import run_global, run_local, run_nucleus

        key = entry.key
        graph = self._graph(key.graph)
        throttle = None
        if self.config.build_throttle > 0:
            pause = self.config.build_throttle

            def throttle(event: ProgressEvent) -> None:
                if event.phase == "sample-batch":
                    time.sleep(pause)

        hook = chain_hooks(self.emit_event,
                           _FaultCarrier(self._fault_plans),
                           throttle, *extra_hooks)
        if key.kind == "global":
            return run_global(
                graph, key.gamma, epsilon=key.epsilon, delta=key.delta,
                method=key.method, seed=key.seed,
                n_samples=key.n_samples,
                batch_size=self.config.batch_size,
                checkpoint_dir=entry.checkpoint_dir, resume=True,
                progress=hook, workers=self.config.workers,
                on_corrupt="restart",
            )
        if key.kind == "nucleus":
            assert key.r is not None and key.s is not None
            return run_nucleus(
                graph, key.r, key.s, key.gamma, method=key.method,
                checkpoint_dir=entry.checkpoint_dir, resume=True,
                progress=hook, workers=self.config.workers,
                on_corrupt="restart",
            )
        return run_local(
            graph, key.gamma, method=key.method,
            checkpoint_dir=entry.checkpoint_dir, resume=True,
            progress=hook, workers=self.config.workers,
            on_corrupt="restart",
        )

    def payload_of(self, key: IndexKey,
                   partial: "PartialResult") -> tuple[dict, bytes]:
        """The JSON summary served to clients + the canonical bytes."""
        from repro.runtime.result import (
            serialize_global_result,
            serialize_local_result,
            serialize_nucleus_result,
        )

        result = partial.result
        base = {
            "kind": key.kind,
            "graph": key.graph,
            "gamma": key.gamma,
            "method": key.method,
            "seed": key.seed,
            "complete": partial.complete,
            "build_degraded": partial.degraded,
            "build_reason": partial.reason,
            "k_max": result.k_max,
        }
        if key.kind == "global":
            base.update({
                "epsilon": key.epsilon,
                "delta": key.delta,
                "n_samples": result.n_samples,
                "effective_epsilon": partial.effective_epsilon,
                "trusses": {
                    str(k): [
                        {"nodes": sorted(map(str, t.nodes())),
                         "edges": t.number_of_edges()}
                        for t in trusses
                    ]
                    for k, trusses in sorted(result.trusses.items())
                },
            })
            if partial.detail.get("supervision"):
                base["supervision"] = partial.detail["supervision"]
            return base, serialize_global_result(result)
        if key.kind == "nucleus":
            base.update({
                "r": key.r,
                "s": key.s,
                "clique_counts": {
                    str(k): len(result.nucleus_cliques(k))
                    for k in range(2, result.k_max + 1)
                },
            })
            return base, serialize_nucleus_result(result)
        base["truss_counts"] = {
            str(k): len(result.maximal_trusses(k))
            for k in range(2, result.k_max + 1)
        }
        return base, serialize_local_result(result)

    # ------------------------------------------------------------------
    # request handling (pure dispatch; HTTP layer calls this)
    def handle(self, endpoint: str, params: dict,
               budget: Budget) -> tuple[int, dict, dict]:
        """Dispatch one query; returns (status, payload, headers).

        ``params`` maps names to lists of strings (query-string style);
        typed :class:`~repro.exceptions.ReproError` subclasses raised
        here are rendered by the HTTP layer via
        :func:`~repro.exceptions.http_status_of`.
        """
        if endpoint == "healthz":
            # Exempt from pressure shedding (handle_http skips the
            # check) so monitoring keeps working under pressure; the
            # payload carries the pressure state instead.
            return 200, {
                "status": "draining" if self.draining else "ok",
                "in_flight": self.admission.inflight,
                "indexes": len(self.store.entries()),
                "pending_builds": self.builder.pending(),
                "pressure": self._pressure_state(),
            }, {}
        if endpoint == "stats":
            return self._handle_stats(params, budget)
        if endpoint == "indexes":
            return 200, {
                "indexes": [e.describe() for e in self.store.entries()],
            }, {}
        if endpoint in ("local", "global", "nucleus"):
            return self._handle_index_query(endpoint, params, budget)
        if endpoint == "team":
            return self._handle_team(params, budget)
        raise ParameterError(
            f"unknown endpoint {endpoint!r}; see docs/serving.md")

    def _handle_stats(self, params: dict, budget: Budget) -> tuple:
        from repro.datasets import dataset_statistics

        graph = self._graph(_one(params, "graph", required=True))
        payload: dict = dict(dataset_statistics(graph))
        remaining = budget.remaining()
        degraded = False
        if remaining is None or remaining > 0.25:
            from repro.core.stats import profile_graph

            profile = profile_graph(graph)
            payload.update({
                "mean_degree": profile.mean_degree,
                "expected_triangles": profile.expected_triangles,
                "density": profile.density,
                "pcc": profile.pcc,
                "clustering": profile.clustering,
            })
        else:
            # Not enough deadline left for the triangle profile: serve
            # the cheap statistics honestly marked partial.
            degraded = True
            self.emit("service-degraded", self._bump("degraded_served"),
                      {"endpoint": "stats", "reason": "deadline"})
        payload["degraded"] = degraded
        if degraded:
            payload["reason"] = "deadline: profile skipped"
        return 200, payload, {}

    def _index_key(self, kind: str, params: dict) -> IndexKey:
        from repro.runtime.harness import _graph_fingerprint
        from repro.graphs.sampling import hoeffding_sample_size

        spec = _one(params, "graph", required=True)
        graph = self._graph(spec)
        fp = _graph_fingerprint(graph)
        gamma = _float(params, "gamma", required=True)
        if not 0.0 <= gamma <= 1.0:
            raise ParameterError(f"gamma must be in [0, 1], got {gamma}")
        if kind == "local":
            method = _one(params, "method", default="dp")
            if method not in ("dp", "baseline"):
                raise ParameterError(
                    f"local method must be dp|baseline, got {method!r}")
            return IndexKey(
                kind="local", graph=spec, graph_nodes=fp["nodes"],
                graph_edges=fp["edges"], graph_crc=fp["crc"],
                gamma=gamma, method=method, seed=self.config.seed)
        if kind == "nucleus":
            from repro.truss.nucleus import validate_rs

            method = _one(params, "method", default="dp")
            if method not in ("dp", "baseline"):
                raise ParameterError(
                    f"nucleus method must be dp|baseline, got {method!r}")
            r = _int(params, "r", default=3)
            s = _int(params, "s", default=4)
            assert r is not None and s is not None
            validate_rs(r, s)
            return IndexKey(
                kind="nucleus", graph=spec, graph_nodes=fp["nodes"],
                graph_edges=fp["edges"], graph_crc=fp["crc"],
                gamma=gamma, method=method, seed=self.config.seed,
                r=r, s=s)
        method = _one(params, "method", default="gbu")
        if method not in ("gbu", "gtd"):
            raise ParameterError(
                f"global method must be gbu|gtd, got {method!r}")
        epsilon = _float(params, "epsilon", default=0.1)
        delta = _float(params, "delta", default=0.1)
        n_samples = _int(params, "samples", default=None)
        if n_samples is None:
            n_samples = hoeffding_sample_size(epsilon, delta)
        return IndexKey(
            kind="global", graph=spec, graph_nodes=fp["nodes"],
            graph_edges=fp["edges"], graph_crc=fp["crc"], gamma=gamma,
            method=method, seed=self.config.seed, epsilon=epsilon,
            delta=delta, n_samples=n_samples)

    def _handle_index_query(self, kind: str, params: dict,
                            budget: Budget) -> tuple:
        key = self._index_key(kind, params)
        entry, created = self.store.ensure(key)
        self._arm_breaker(entry)
        refresh = _flag(params, "refresh")
        breaker = entry.breaker
        if created or refresh or entry.status in ("failed", "interrupted"):
            # Request unconditionally: ``builder.request`` dedups, and
            # the builder thread — the breaker's sole writer — makes
            # the one mutating ``allow()`` decision. Calling ``allow()``
            # here would consume the open→half-open probe permit on a
            # handler thread and wedge the breaker half-open forever.
            self.builder.request(entry.token)
        wait = _flag(params, "wait")
        if wait and entry.payload is None:
            self._wait_for_index(entry, budget)
        payload = entry.payload
        if payload is not None:
            breaker_open = breaker.state != "closed"
            stale = entry.degraded
            degraded = bool(payload.get("build_degraded") or stale
                            or breaker_open)
            reasons = [r for r in (
                payload.get("build_reason"),
                entry.reason if stale else None,
                f"circuit {breaker.state}" if breaker_open else None,
            ) if r]
            doc = dict(payload)
            doc["degraded"] = degraded
            doc["reasons"] = sorted(set(reasons))
            doc["breaker"] = breaker.state
            doc["token"] = entry.token
            if degraded:
                self.emit("service-degraded",
                          self._bump("degraded_served"),
                          {"endpoint": kind,
                           "reason": "; ".join(doc["reasons"]) or "stale"})
            return 200, doc, {}
        retry_after = 1.0
        if breaker.state != "closed":
            retry_after = max(retry_after, breaker.retry_after())
        building = entry.status in ("queued", "building", "interrupted")
        raise IndexUnavailableError(
            f"index {entry.token} is "
            f"{'building' if building else 'unavailable'} "
            f"(status {entry.status})",
            retry_after=retry_after, building=building)

    def _wait_for_index(self, entry: IndexEntry, budget: Budget) -> None:
        """Block (bounded by the request deadline) for a fresh build."""
        while entry.payload is None:
            remaining = budget.remaining()
            if remaining is None or remaining <= 0.05:
                return
            if entry.status == "failed" and self.builder.pending() == 0:
                return
            time.sleep(min(0.05, remaining))

    def _handle_team(self, params: dict, budget: Budget) -> tuple:
        from repro.apps.team_formation import team_by_local_truss
        from repro.runtime import run_local

        gamma = _float(params, "gamma", default=1e-3)
        query = params.get("query") or []
        keywords = params.get("keywords") or ["data", "algorithm"]
        if not query:
            raise ParameterError(
                "team queries need at least one ?query= member")
        network = self._collaboration_network()
        task_graph = network.task_graph(keywords)
        # A fresh budget over the deadline *remaining* after admission,
        # so queue time counts against the request like everything else.
        compute = Budget(deadline=max(0.05, budget.remaining() or 0.05),
                         clock=self._clock)
        partial = run_local(task_graph, gamma, budget=compute)
        team = None
        if partial.result is not None:
            team = team_by_local_truss(
                task_graph, query, gamma, local_result=partial.result)
        payload: dict = {
            "query": list(query),
            "keywords": list(keywords),
            "gamma": gamma,
            "degraded": partial.degraded or not partial.complete,
        }
        if partial.degraded or not partial.complete:
            payload["reason"] = partial.reason or "partial decomposition"
            self.emit("service-degraded", self._bump("degraded_served"),
                      {"endpoint": "team",
                       "reason": payload["reason"]})
        if team is None:
            payload["team"] = None
        else:
            payload["team"] = {
                "k": team.k,
                "members": sorted(map(str, team.subgraph.nodes())),
                "n_members": team.n_members,
                "n_edges": team.n_edges,
                "density": team.density,
                "pcc": team.pcc,
                "contains_query": team.contains_query,
            }
        return 200, payload, {}

    # ------------------------------------------------------------------
    # HTTP plumbing
    def accepting(self) -> bool:
        """accept()-time gate: drain state and injected refusals."""
        if self.draining:
            return False
        if self._take_fault("refuse_accept") is not None:
            self.emit("service-shed", self._bump("shed"),
                      {"endpoint": None, "reason": "refuse-accept-fault",
                       "retry_after": self.admission.retry_after})
            return False
        return True

    def _pressure_state(self) -> str | None:
        """``"memory"``/``"disk"`` when a watchdog threshold is
        crossed, None when unconfigured or healthy."""
        watchdog = self.watchdog
        if watchdog is None:
            return None
        sample = watchdog.probe()
        rss = sample.get("peak_rss_bytes")
        free = sample.get("free_bytes")
        if (watchdog.memory_limit_bytes is not None
                and rss is not None
                and rss > watchdog.memory_limit_bytes):
            return "memory"
        if (watchdog.min_free_bytes is not None
                and free is not None
                and free < watchdog.min_free_bytes):
            return "disk"
        return None

    def _check_pressure(self) -> None:
        """Shed when the watchdog's latest probe crossed a threshold."""
        pressure = self._pressure_state()
        if pressure is not None:
            raise OverloadedError(
                f"resource pressure: {pressure}",
                retry_after=max(1.0, self.watchdog.interval))

    # repro: owned-by[handler]
    def handle_http(self, handler: "_Handler") -> None:
        """One request, end to end: admission, dispatch, response."""
        started = self._clock()
        request_id = self._next_request_id()
        url = urlsplit(handler.path)
        endpoint = url.path.strip("/") or "healthz"
        params = parse_qs(url.query)
        deadline = _float(params, "deadline",
                          default=self.config.default_deadline)
        deadline = max(0.05, min(deadline, self.config.max_deadline))
        budget = Budget(deadline=deadline, clock=self._clock).start()
        status, payload, headers = 500, {"error": {
            "type": "ServiceError", "message": "unhandled"}}, {}
        try:
            if endpoint != "healthz":
                # /healthz stays answerable under resource pressure —
                # shedding it would blind monitoring exactly when
                # operators need it; the payload reports the pressure.
                self._check_pressure()
            with self.admission.slot(timeout=deadline):
                self._bump("requests")
                self.emit("service-request", request_id,
                          {"endpoint": endpoint, "id": request_id,
                           "deadline": deadline})
                status, payload, headers = self.handle(
                    endpoint, params, budget)
                self._write_json(handler, endpoint, request_id, started,
                                 status, payload, headers)
                return
        except OverloadedError as err:
            self.emit("service-shed", self._bump("shed"),
                      {"endpoint": endpoint, "reason": str(err),
                       "retry_after": err.retry_after})
            status, payload, headers = _error_response(err)
        except ReproError as err:
            status, payload, headers = _error_response(err)
        except Exception as err:  # repro: allow[EXC003] last-resort guard: a serving bug must become a well-formed 500 response, never a hung socket or a torn body
            payload = {"error": {"type": type(err).__name__,
                                 "message": str(err)}}
            status, headers = 500, {}
        self._write_json(handler, endpoint, request_id, started,
                         status, payload, headers)

    def _write_json(self, handler: BaseHTTPRequestHandler,
                    endpoint: str, request_id: int,
                    started: float, status: int, payload: dict,
                    headers: dict) -> None:
        body = json.dumps(payload, sort_keys=True, default=str).encode()
        elapsed = round(self._clock() - started, 4)
        if self._take_fault("drop_connection") is not None:
            self._bump("dropped_writes")
            handler.close_connection = True
            try:
                handler.connection.close()
            except OSError:
                pass
            self.emit("service-response", request_id,
                      {"endpoint": endpoint, "status": 0,
                       "elapsed": elapsed, "dropped": True})
            return
        stall = self._take_fault("slow_client")
        try:
            handler.send_response(status)
            handler.send_header("Content-Type", "application/json")
            handler.send_header("Content-Length", str(len(body)))
            handler.send_header("Connection", "close")
            for name, value in headers.items():
                handler.send_header(name, str(value))
            handler.end_headers()
            if stall:
                half = len(body) // 2
                handler.wfile.write(body[:half])
                handler.wfile.flush()
                time.sleep(stall)
                handler.wfile.write(body[half:])
            else:
                handler.wfile.write(body)
            handler.wfile.flush()
        except (OSError, ValueError):
            # The client vanished mid-write (or closed its socket);
            # nothing to salvage — the slot is still released and the
            # response is recorded as dropped.
            self._bump("dropped_writes")
            self.emit("service-response", request_id,
                      {"endpoint": endpoint, "status": 0,
                       "elapsed": elapsed, "dropped": True})
            return
        self._bump("responses")
        self.emit("service-response", request_id,
                  {"endpoint": endpoint, "status": status,
                   "elapsed": elapsed,
                   "degraded": bool(payload.get("degraded"))})


def _error_response(err: ReproError) -> tuple[int, dict, dict]:
    status = http_status_of(err)
    payload: dict = {"error": {"type": type(err).__name__,
                               "message": str(err)}}
    headers: dict = {}
    retry_after = getattr(err, "retry_after", None)
    if retry_after is not None:
        headers["Retry-After"] = max(1, int(round(retry_after + 0.5)))
        payload["error"]["retry_after"] = retry_after
    if getattr(err, "building", False):
        payload["error"]["building"] = True
    return status, payload, headers


def _one(params: dict, name: str, default: str | None = None,
         required: bool = False) -> str | None:
    values = params.get(name)
    if not values:
        if required:
            raise ParameterError(f"missing required parameter {name!r}")
        return default
    return values[-1]


def _float(params: dict, name: str, default: float | None = None,
           required: bool = False) -> float | None:
    raw = _one(params, name, required=required)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ParameterError(
            f"parameter {name!r} must be a number, got {raw!r}"
        ) from None


def _int(params: dict, name: str, default: int | None = None) -> int | None:
    raw = _one(params, name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ParameterError(
            f"parameter {name!r} must be an integer, got {raw!r}"
        ) from None


def _flag(params: dict, name: str) -> bool:
    raw = _one(params, name)
    return raw not in (None, "", "0", "false", "no")


class _ServiceHTTPServer(ThreadingHTTPServer):
    """Threading server that consults the service at accept time."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple, handler: type,
                 service: TrussService) -> None:
        self.service = service
        super().__init__(address, handler)

    def verify_request(self, request: object,
                       client_address: object) -> bool:
        return self.service.accepting()


class _Handler(BaseHTTPRequestHandler):
    """Thin adapter: all logic lives in :meth:`TrussService.handle_http`."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.0"
    #: Bound read so a stalled *request* cannot pin a thread forever.
    timeout = 30

    # repro: owned-by[handler]
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self.server.service.handle_http(self)

    do_POST = do_GET

    def log_message(self, format: str, *args: object) -> None:
        # Access logging goes through service-request/service-response
        # trace events instead of stderr.
        pass


def serve(config: ServeConfig,
          progress: Callable[[ProgressEvent], None] | None = None, *,
          ready: "Callable[[TrussService], None] | None" = None) -> int:
    """Run the service until SIGINT/SIGTERM; returns the exit code.

    Installs an :class:`~repro.runtime.InterruptGuard` on the main
    thread, runs ``serve_forever`` on a daemon thread, and on the first
    signal performs the graceful drain (stop accepting, finish
    in-flight within the grace period, checkpoint the in-progress
    build) before returning 130/143.
    """
    service = TrussService(config, progress=progress)
    service.start()
    host, port = service.address
    print(f"serving on http://{host}:{port}", flush=True)
    if ready is not None:
        ready(service)
    with InterruptGuard() as guard:
        thread = threading.Thread(
            target=service.http_server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve-accept", daemon=True)
        thread.start()
        try:
            while not guard.triggered:
                time.sleep(0.05)
        except KeyboardInterrupt:
            guard.trigger(signal.SIGINT)
    signum = guard.signum or signal.SIGTERM
    code = service.drain(signum)
    try:
        thread.join(timeout=config.grace)
    except RuntimeError:  # pragma: no cover - thread never started
        pass
    name = "SIGTERM" if signum == signal.SIGTERM else "SIGINT"
    print(f"drained on {name}; state in {config.state_dir}", flush=True)
    return code
