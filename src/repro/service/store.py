"""Persistent decomposition indexes for the ``repro serve`` service.

An :class:`IndexKey` pins everything that determines a decomposition's
bytes: the kind (global/local/nucleus), the graph (spec string *and*
content fingerprint), the quality parameters, the seed, and the RNG
scheme. The
:class:`IndexStore` persists one directory per key token under
``<state_dir>/indexes/``::

    <token>/key.json        the key, for warm-start discovery
    <token>/meta.json       status, degradations, build accounting,
                            and the JSON summary payload served to
                            clients
    <token>/result.bin      the canonical serialized result bytes
                            (:func:`~repro.runtime.result.serialize_global_result`
                            / ``serialize_local_result``) — the
                            byte-identity contract the drain/resume
                            tests compare
    <token>/checkpoint/     the harness's resumable snapshot for
                            in-progress builds

Every file is written atomically (temp + fsync + rename) and
``result.bin`` is committed *before* the ``meta.json`` that declares the
index ready, so a crash at any point leaves either the old consistent
state or the new one — never a torn index.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.exceptions import ServiceError

__all__ = ["IndexKey", "IndexEntry", "IndexStore"]


@dataclass(frozen=True)
class IndexKey:
    """Identity of one precomputed decomposition.

    ``graph`` is the CLI-style spec (dataset name or file path);
    ``graph_nodes``/``graph_edges``/``graph_crc`` fingerprint the actual
    content so a changed file under the same path gets a fresh index.
    ``rng_scheme`` names the determinism family (``"per-seed"``), the
    same tag the checkpoint manifests pin.
    """

    kind: str
    graph: str
    graph_nodes: int
    graph_edges: int
    graph_crc: int
    gamma: float
    method: str
    seed: int
    rng_scheme: str = "per-seed"
    epsilon: float | None = None
    delta: float | None = None
    n_samples: int | None = None
    #: Nucleus-only: the (r, s) family; None for global/local keys so
    #: their canonical dicts (and hence tokens) stay versioned together.
    r: int | None = None
    s: int | None = None

    def to_dict(self) -> dict:
        return asdict(self)

    @property
    def token(self) -> str:
        """Stable directory name: a short hash of the canonical key."""
        blob = json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":")).encode()
        return f"{self.kind}-{hashlib.sha256(blob).hexdigest()[:16]}"

    @classmethod
    def from_dict(cls, doc: dict) -> "IndexKey":
        return cls(**doc)


class IndexEntry:
    """In-memory state of one index, mirrored to ``meta.json``.

    ``status`` is one of ``queued`` (build requested, not started),
    ``building``, ``ready`` (payload + result bytes on disk),
    ``failed`` (no good result yet), or ``interrupted`` (a drain
    checkpointed a partial build; a warm restart resumes it). A failed
    rebuild of a previously-ready index keeps ``status == "ready"`` —
    the last good result keeps being served, marked degraded.
    """

    def __init__(self, key: IndexKey, directory: Path) -> None:
        self.key = key
        self.directory = directory
        self.status = "queued"
        self.payload: dict | None = None
        self.degraded = False
        self.reason: str | None = None
        self.builds = 0
        self.failures = 0
        #: Set by the service at registration time.
        self.breaker = None

    @property
    def token(self) -> str:
        return self.key.token

    @property
    def checkpoint_dir(self) -> Path:
        return self.directory / "checkpoint"

    @property
    def result_path(self) -> Path:
        return self.directory / "result.bin"

    def describe(self) -> dict:
        """The ``/indexes`` listing row."""
        doc = {
            "token": self.token,
            "key": self.key.to_dict(),
            "status": self.status,
            "degraded": self.degraded,
            "reason": self.reason,
            "builds": self.builds,
            "failures": self.failures,
        }
        if self.breaker is not None:
            doc["breaker"] = {
                "state": self.breaker.state,
                "failures": self.breaker.failures,
                "retry_after": round(self.breaker.retry_after(), 3),
            }
        return doc

    def _meta(self) -> dict:
        return {
            "status": self.status,
            "payload": self.payload,
            "degraded": self.degraded,
            "reason": self.reason,
            "builds": self.builds,
            "failures": self.failures,
        }


def _write_atomic(path: Path, data: bytes) -> None:
    """Temp + fsync + rename so readers never observe a torn file."""
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as err:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise ServiceError(
            f"index write to {path} failed: {err}"
        ) from err


class IndexStore:
    """Thread-safe registry of :class:`IndexEntry` objects on disk."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._entries: dict[str, IndexEntry] = {}  # repro: guarded-by[self._lock]

    def load(self) -> list[IndexEntry]:
        """Warm start: rebuild the registry from disk.

        Returns the entries that need a (re)build — anything not
        cleanly ``ready``, including builds a drain interrupted.
        """
        pending: list[IndexEntry] = []
        with self._lock:
            for key_file in sorted(self.root.glob("*/key.json")):
                try:
                    key = IndexKey.from_dict(
                        json.loads(key_file.read_text(encoding="utf-8")))
                except (OSError, ValueError, TypeError, KeyError):
                    # A torn or foreign directory: skip, never crash the
                    # warm start over one damaged index.
                    continue
                entry = IndexEntry(key, key_file.parent)
                meta_file = entry.directory / "meta.json"
                try:
                    meta = json.loads(meta_file.read_text(encoding="utf-8"))
                except (OSError, ValueError):
                    meta = {}
                entry.status = meta.get("status", "interrupted")
                entry.payload = meta.get("payload")
                entry.degraded = bool(meta.get("degraded", False))
                entry.reason = meta.get("reason")
                entry.builds = int(meta.get("builds", 0))
                entry.failures = int(meta.get("failures", 0))
                if entry.status == "ready" and not entry.result_path.exists():
                    # meta says ready but the result bytes are missing:
                    # treat as interrupted and rebuild.
                    entry.status = "interrupted"
                if entry.status in ("queued", "building"):
                    # The previous process died mid-build; the
                    # checkpoint (if any) makes the resume cheap.
                    entry.status = "interrupted"
                self._entries[entry.token] = entry
                if entry.status != "ready":
                    pending.append(entry)
        return pending

    def get(self, token: str) -> IndexEntry | None:
        with self._lock:
            return self._entries.get(token)

    def entries(self) -> list[IndexEntry]:
        with self._lock:
            return sorted(self._entries.values(), key=lambda e: e.token)

    def ensure(self, key: IndexKey) -> tuple[IndexEntry, bool]:
        """Get or register the entry for ``key``; True when created."""
        with self._lock:
            entry = self._entries.get(key.token)
            if entry is not None:
                return entry, False
            entry = IndexEntry(key, self.root / key.token)
            entry.directory.mkdir(parents=True, exist_ok=True)
            _write_atomic(
                entry.directory / "key.json",
                json.dumps(key.to_dict(), sort_keys=True,
                           indent=1).encode(),
            )
            self._entries[key.token] = entry
            self._persist_meta(entry)
            return entry, True

    def _persist_meta(self, entry: IndexEntry) -> None:
        _write_atomic(
            entry.directory / "meta.json",
            json.dumps(entry._meta(), sort_keys=True, indent=1).encode(),
        )

    def mark_building(self, token: str) -> None:
        with self._lock:
            entry = self._entries[token]
            entry.status = "building"
            entry.builds += 1
            self._persist_meta(entry)

    def complete(self, token: str, payload: dict, result_bytes: bytes,
                 *, degraded: bool, reason: str | None) -> None:
        """Commit a finished build: result bytes first, then the meta
        that declares them ready (crash-ordering, see module doc)."""
        with self._lock:
            entry = self._entries[token]
            _write_atomic(entry.result_path, result_bytes)
            entry.status = "ready"
            entry.payload = payload
            entry.degraded = bool(degraded)
            entry.reason = reason
            self._persist_meta(entry)

    def fail(self, token: str, reason: str) -> None:
        """A build failed; keep serving the last good payload if any."""
        with self._lock:
            entry = self._entries[token]
            entry.failures += 1
            entry.reason = reason
            if entry.payload is not None:
                entry.status = "ready"
                entry.degraded = True
            else:
                entry.status = "failed"
            self._persist_meta(entry)

    def interrupt(self, token: str) -> None:
        """A drain stopped the build; the checkpoint makes it resumable."""
        with self._lock:
            entry = self._entries[token]
            entry.status = "interrupted"
            self._persist_meta(entry)
