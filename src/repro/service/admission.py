"""Admission control for the ``repro serve`` query service.

An :class:`AdmissionController` bounds the number of requests being
processed (``max_inflight``) and the number allowed to queue for a slot
(``max_queue``). A request past both bounds — or one whose deadline
expires while queued — is *shed* with a typed
:class:`~repro.exceptions.OverloadedError` carrying a ``retry_after``
hint; the HTTP layer renders that as ``503`` + ``Retry-After``. The slot
covers the entire request lifetime including the response write, so a
client that stops draining its socket (see
:meth:`~repro.runtime.faults.FaultPlan.slow_client`) holds its slot and
back-pressures later arrivals instead of letting the thread count grow
without bound.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager

from repro.exceptions import OverloadedError

__all__ = ["AdmissionController"]


class AdmissionController:
    """Bounded in-flight + bounded queue request admission.

    Parameters
    ----------
    max_inflight:
        Requests processed concurrently.
    max_queue:
        Requests allowed to wait for a slot; arrivals beyond this are
        shed immediately.
    retry_after:
        The ``Retry-After`` hint attached to shed requests.
    clock:
        Injectable monotonic time source.
    """

    def __init__(self, max_inflight: int = 8, max_queue: int = 16,
                 retry_after: float = 1.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.max_inflight = int(max_inflight)
        self.max_queue = int(max_queue)
        self.retry_after = float(retry_after)
        self._clock = clock
        self._cond = threading.Condition(threading.Lock())
        self.inflight = 0  # repro: guarded-by[self._cond]
        self.queued = 0  # repro: guarded-by[self._cond]
        #: Lifetime counters: admitted requests, shed requests (split by
        #: reason), and the high-water marks.
        # repro: guarded-by[self._cond]
        self.stats = {"admitted": 0, "shed_queue_full": 0,
                      "shed_wait_deadline": 0, "max_inflight_seen": 0,
                      "max_queued_seen": 0}

    def acquire(self, timeout: float) -> None:
        """Take a slot, waiting up to ``timeout`` seconds in the queue.

        Raises :class:`OverloadedError` when the queue is full or the
        wait times out; on success the caller owns one slot and must
        :meth:`release` it.
        """
        with self._cond:
            if self.inflight < self.max_inflight:
                self._admit_locked()
                return
            if self.queued >= self.max_queue:
                self.stats["shed_queue_full"] += 1
                raise OverloadedError(
                    f"admission queue full ({self.queued} waiting, "
                    f"{self.inflight} in flight)",
                    retry_after=self.retry_after,
                )
            self.queued += 1
            self.stats["max_queued_seen"] = max(
                self.stats["max_queued_seen"], self.queued)
            give_up_at = self._clock() + max(0.0, timeout)
            try:
                while self.inflight >= self.max_inflight:
                    remaining = give_up_at - self._clock()
                    if remaining <= 0:
                        self.stats["shed_wait_deadline"] += 1
                        raise OverloadedError(
                            "no slot freed before the request deadline",
                            retry_after=self.retry_after,
                        )
                    self._cond.wait(remaining)
                self._admit_locked()
            finally:
                self.queued -= 1

    def _admit_locked(self) -> None:
        self.inflight += 1
        self.stats["admitted"] += 1
        self.stats["max_inflight_seen"] = max(
            self.stats["max_inflight_seen"], self.inflight)

    def release(self) -> None:
        """Return a slot and wake the waiters.

        ``notify_all`` rather than ``notify``: queued acquirers and a
        draining :meth:`wait_idle` share the condition, and a single
        notify could wake the wrong one.
        """
        with self._cond:
            self.inflight -= 1
            self._cond.notify_all()

    @contextmanager
    def slot(self, timeout: float) -> Iterator[None]:
        """Context manager pairing :meth:`acquire` with :meth:`release`."""
        self.acquire(timeout)
        try:
            yield
        finally:
            self.release()

    def wait_idle(self, grace: float) -> bool:
        """Drain helper: wait up to ``grace`` seconds for inflight == 0."""
        give_up_at = self._clock() + max(0.0, grace)
        with self._cond:
            while self.inflight > 0:
                remaining = give_up_at - self._clock()
                if remaining <= 0:
                    return False
                self._cond.wait(min(remaining, 0.1))
            return True
