"""Per-index circuit breaker for the ``repro serve`` query service.

A :class:`CircuitBreaker` guards one decomposition index's rebuild path.
Repeated build failures — crashed workers, quarantined tasks, ENOSPC,
anything that keeps a build from finishing cleanly — *open* the breaker:
queries keep being answered from the last good cached result (marked
``degraded``), and rebuild attempts are suppressed until an exponential
backoff expires. The first attempt after the backoff runs *half-open*:
one probe build is allowed through; success closes the breaker, another
failure re-opens it with a doubled backoff (capped).

The breaker is deliberately clock-injectable and lock-free: the single
builder thread is the only writer — :meth:`allow`,
:meth:`record_failure` and :meth:`record_success` must only ever be
called from it. Request handlers only read :attr:`state` and
:meth:`retry_after`, both safe concurrently under CPython's atomic
attribute access; in particular a handler must never call
:meth:`allow`, which would consume the single open→half-open probe
permit the builder relies on and wedge the breaker half-open. That
sole-writer contract is machine-checked: the ``# repro:
owned-by[builder]`` annotations below feed reprolint's CONC002 rule
(see docs/static-analysis.md).
"""

from __future__ import annotations

import time
from collections.abc import Callable

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Failure-counting breaker with exponential rebuild backoff.

    Parameters
    ----------
    threshold:
        Consecutive failures before the breaker opens.
    backoff_base:
        Seconds of backoff when the breaker first opens; doubles on
        every further failure while open.
    backoff_cap:
        Ceiling on the backoff interval.
    clock:
        Injectable monotonic time source (tests pass a fake).
    """

    def __init__(self, threshold: int = 3, backoff_base: float = 0.5,
                 backoff_cap: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.threshold = int(threshold)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self._clock = clock
        #: ``"closed"`` (healthy), ``"open"`` (rebuilds suppressed), or
        #: ``"half-open"`` (one probe rebuild in flight).
        self.state = "closed"  # repro: owned-by[builder]
        #: Consecutive failures since the last success.
        self.failures = 0  # repro: owned-by[builder]
        self._open_until = 0.0  # repro: owned-by[builder]

    def current_backoff(self) -> float:
        """The backoff interval the *next* open period would use."""
        exponent = max(0, self.failures - self.threshold)
        return min(self.backoff_cap, self.backoff_base * (2 ** exponent))

    # repro: owned-by[builder]
    def record_failure(self) -> str:
        """Count one failed build; returns the resulting state."""
        self.failures += 1
        if self.failures >= self.threshold:
            self.state = "open"
            self._open_until = self._clock() + self.current_backoff()
        return self.state

    # repro: owned-by[builder]
    def record_success(self) -> str:
        """A build finished cleanly: reset and close."""
        self.failures = 0
        self.state = "closed"
        self._open_until = 0.0
        return self.state

    # repro: owned-by[builder]
    def allow(self) -> bool:
        """May a rebuild start now? **Builder-thread only** (mutates).

        Closed: yes. Open: only once the backoff has expired, which
        transitions to half-open (the probe). Half-open: no — one probe
        at a time.
        """
        if self.state == "closed":
            return True
        if self.state == "open" and self._clock() >= self._open_until:
            self.state = "half-open"
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until a rebuild (or a client retry) makes sense."""
        if self.state == "closed":
            return 0.0
        if self.state == "half-open":
            # A probe is in flight; suggest one base interval.
            return self.backoff_base
        return max(0.0, self._open_until - self._clock())
