"""Task-driven team formation over an uncertain collaboration network.

Section 6.5 of the paper adapts the team-formation problem of Bonchi et
al. to trusses: given a collaboration network whose edge probabilities
are conditioned on a task's keywords, a query ``(Q, W)`` asks for a
local/global (k, gamma)-truss containing all query nodes ``Q`` with the
highest k.

The paper derives task-conditioned probabilities with LDA over paper
titles; this reproduction substitutes a smoothed keyword-overlap model
(see DESIGN.md §3): an edge whose collaboration history matches the
query keywords strongly gets a high probability, an unrelated edge a
near-zero one. The qualitative outcome matches the paper's Figure 10 —
truss-based teams are dramatically smaller and denser than
(k, eta)-core-based teams.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ParameterError
from repro.graphs.probabilistic import ProbabilisticGraph, edge_key
from repro.core.local import LocalTrussResult, local_truss_decomposition
from repro.core.global_decomp import global_truss_decomposition
from repro.core.metrics import (
    probabilistic_clustering_coefficient,
    probabilistic_density,
)
from repro.core.pcore import eta_core_decomposition

__all__ = [
    "CollaborationNetwork",
    "TeamResult",
    "generate_collaboration_network",
    "team_by_local_truss",
    "team_by_global_truss",
    "team_by_eta_core",
]

Node = Hashable
Edge = tuple[Node, Node]

#: Research-area vocabularies for the synthetic network. The "data" and
#: "algorithm" areas host the planted query authors, mirroring the
#: paper's Ullman/Indyk example.
_AREAS: dict[str, tuple[str, ...]] = {
    "data": ("data", "database", "query", "mining", "warehouse", "stream"),
    "algorithm": ("algorithm", "complexity", "approximation", "graph",
                  "sketch", "hashing"),
    "systems": ("systems", "operating", "distributed", "network", "storage"),
    "ml": ("learning", "neural", "model", "inference", "classification"),
    "theory": ("logic", "automata", "proof", "semantics", "verification"),
}


@dataclass
class CollaborationNetwork:
    """An uncertain collaboration network with per-edge keyword histories.

    Attributes
    ----------
    structure:
        The collaboration graph; probabilities are placeholders (1.0)
        until conditioned on a task.
    keywords:
        ``{edge: Counter of keywords}`` — the bag of title words of the
        papers co-authored across the edge.
    collaborations:
        ``{edge: count}`` — how many papers the pair co-authored.
    """

    structure: ProbabilisticGraph
    keywords: dict[Edge, Counter] = field(default_factory=dict)
    collaborations: dict[Edge, int] = field(default_factory=dict)

    def task_graph(self, task_keywords: Sequence[str],
                   smoothing: float = 0.6,
                   strength: float = 2.5) -> ProbabilisticGraph:
        """Return ``G_W``: the network with probabilities conditioned on a task.

        For an edge with keyword bag ``B`` and ``c`` collaborations, the
        relevance is the smoothed fraction of ``B``'s mass on the task
        keywords, and ``p = 1 - exp(-strength * c * relevance)``. Strongly
        relevant, repeated collaborations approach probability 1;
        unrelated pairs stay near the smoothing floor.
        """
        if not task_keywords:
            raise ParameterError("task_keywords must be non-empty")
        task = {w.lower() for w in task_keywords}
        graph = self.structure.copy()
        for u, v in list(graph.edges()):
            e = edge_key(u, v)
            bag = self.keywords.get(e, Counter())
            total = sum(bag.values())
            hit = sum(cnt for w, cnt in bag.items() if w in task)
            vocabulary = max(len(bag), 1)
            relevance = (hit + smoothing) / (total + smoothing * vocabulary)
            c = self.collaborations.get(e, 1)
            p = 1.0 - math.exp(-strength * c * relevance)
            graph.set_probability(u, v, min(1.0, p))
        return graph


@dataclass
class TeamResult:
    """A team found for a query: the subgraph, its order k and quality."""

    method: str
    k: int
    subgraph: ProbabilisticGraph
    contains_query: bool

    @property
    def n_members(self) -> int:
        """Number of researchers in the team."""
        return self.subgraph.number_of_nodes()

    @property
    def n_edges(self) -> int:
        """Number of collaboration edges in the team."""
        return self.subgraph.number_of_edges()

    @property
    def density(self) -> float:
        """Probabilistic density (Eq. 12) of the team subgraph."""
        return probabilistic_density(self.subgraph)

    @property
    def pcc(self) -> float:
        """Probabilistic clustering coefficient (Eq. 13) of the team."""
        return probabilistic_clustering_coefficient(self.subgraph)


def generate_collaboration_network(
    seed=None,
    n_groups: int = 24,
    group_size_range: tuple[int, int] = (9, 14),
    query_authors: Sequence[str] = ("Jeffrey D. Ullman", "Piotr Indyk"),
    query_areas: Sequence[str] = ("data", "algorithm"),
) -> CollaborationNetwork:
    """Generate a synthetic DBLP-like collaboration network.

    Research groups are near-cliques, each devoted to one research area
    (its edges' keyword bags draw from that area's vocabulary). The
    ``query_authors`` are planted inside a dense bridge group working
    across ``query_areas`` and — being famous — also carry a handful of
    cross-group collaborations. This mirrors the structure behind the
    paper's Figure 10 case study: a query on their areas finds a small
    cohesive truss around the bridge, while the degree-based
    (k, eta)-core balloons across the loosely-chained ordinary groups.
    """
    rng = (
        seed if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    for area in query_areas:
        if area not in _AREAS:
            raise ParameterError(
                f"unknown research area {area!r}; options: {sorted(_AREAS)}"
            )
    structure = ProbabilisticGraph()
    keywords: dict[Edge, Counter] = {}
    collaborations: dict[Edge, int] = {}
    area_names = sorted(_AREAS)

    def add_collaboration(u: Node, v: Node, area: str, papers: int) -> None:
        structure.add_edge(u, v, 1.0)
        e = edge_key(u, v)
        bag = keywords.setdefault(e, Counter())
        vocab = _AREAS[area]
        for _ in range(papers * 3):  # ~3 title words per paper
            bag[vocab[int(rng.integers(len(vocab)))]] += 1
        collaborations[e] = collaborations.get(e, 0) + papers

    # The planted bridge group around the query authors.
    bridge = list(query_authors) + [f"bridge_{i}" for i in range(5)]
    for i, u in enumerate(bridge):
        for v in bridge[:i]:
            if rng.random() < 0.9:
                area = query_areas[int(rng.integers(len(query_areas)))]
                add_collaboration(u, v, area, papers=int(rng.integers(2, 6)))
    # Make sure the two query authors are directly connected.
    if not structure.has_edge(query_authors[0], query_authors[1]):
        add_collaboration(query_authors[0], query_authors[1],
                          query_areas[0], papers=3)

    # Ordinary research groups: dense enough that their members' core
    # numbers rival the bridge's, which is what lets eta-cores balloon.
    member_id = 0
    previous_anchor: Node | None = None
    all_members: list[Node] = []
    for g in range(n_groups):
        area = area_names[int(rng.integers(len(area_names)))]
        size = int(rng.integers(group_size_range[0], group_size_range[1] + 1))
        members = [f"author_{member_id + i}" for i in range(size)]
        member_id += size
        all_members.extend(members)
        for i, u in enumerate(members):
            for v in members[:i]:
                if rng.random() < 0.75:
                    add_collaboration(u, v, area, papers=int(rng.integers(1, 4)))
        # Chain groups loosely into a giant component, and attach some
        # groups to the bridge so cores have room to balloon.
        anchor = members[0]
        if previous_anchor is not None:
            add_collaboration(anchor, previous_anchor, area, papers=1)
        if rng.random() < 0.5:
            target = bridge[int(rng.integers(len(bridge)))]
            add_collaboration(members[1], target, area, papers=1)
        previous_anchor = anchor
    # Famous authors collaborate widely (one-off papers across areas).
    for q in query_authors:
        picks = rng.choice(len(all_members), size=min(4, len(all_members)),
                           replace=False)
        for idx in picks:
            area = area_names[int(rng.integers(len(area_names)))]
            add_collaboration(q, all_members[int(idx)], area, papers=1)
    return CollaborationNetwork(
        structure=structure, keywords=keywords, collaborations=collaborations
    )


def _query_nodes_present(graph: ProbabilisticGraph,
                         query: Iterable[Node]) -> list[Node]:
    nodes = list(query)
    missing = [q for q in nodes if not graph.has_node(q)]
    if missing:
        raise ParameterError(f"query nodes not in network: {missing}")
    return nodes


def team_by_local_truss(
    task_graph: ProbabilisticGraph,
    query: Iterable[Node],
    gamma: float,
    local_result: LocalTrussResult | None = None,
) -> TeamResult | None:
    """Find the highest-k maximal local (k, gamma)-truss containing all of ``query``.

    Returns None when no local truss (k >= 2) contains every query node.
    """
    nodes = _query_nodes_present(task_graph, query)
    if local_result is None:
        local_result = local_truss_decomposition(task_graph, gamma)
    for k in range(local_result.k_max, 1, -1):
        for truss in local_result.maximal_trusses(k):
            if all(truss.has_node(q) for q in nodes):
                return TeamResult(method="local-truss", k=k, subgraph=truss,
                                  contains_query=True)
    return None


def team_by_global_truss(
    task_graph: ProbabilisticGraph,
    query: Iterable[Node],
    gamma: float,
    seed=None,
    epsilon: float = 0.1,
    delta: float = 0.1,
) -> list[TeamResult]:
    """Refine the local team with global (k, gamma)-truss decomposition.

    Following the paper's procedure: the highest-k local truss containing
    the query is used as the input of the global decomposition (GBU); all
    maximal approximate global trusses at the top non-empty k are
    returned, flagged by whether they contain the full query.
    Returns an empty list when no local team exists.
    """
    local_team = team_by_local_truss(task_graph, query, gamma)
    if local_team is None:
        return []
    result = global_truss_decomposition(
        local_team.subgraph, gamma, epsilon=epsilon, delta=delta,
        method="gbu", seed=seed,
    )
    if result.k_max == 0:
        return []
    nodes = list(query)
    teams = [
        TeamResult(
            method="global-truss", k=result.k_max, subgraph=truss,
            contains_query=all(truss.has_node(q) for q in nodes),
        )
        for truss in result.trusses[result.k_max]
    ]
    # Teams containing the whole query first, larger k already fixed.
    teams.sort(key=lambda t: (not t.contains_query, -t.n_edges))
    return teams


def team_by_eta_core(
    task_graph: ProbabilisticGraph,
    query: Iterable[Node],
    eta: float,
) -> TeamResult | None:
    """Find the highest-k (k, eta)-core containing all of ``query``.

    The comparator of Bonchi et al. used in the paper's case study. The
    (k, eta)-core is node-induced and may be much larger than a truss.
    Returns None when even the (1, eta)-core misses a query node.
    """
    nodes = _query_nodes_present(task_graph, query)
    core = eta_core_decomposition(task_graph, eta)
    k_cap = min(core[q] for q in nodes)
    for k in range(k_cap, 0, -1):
        members = [u for u, c in core.items() if c >= k]
        subgraph = task_graph.subgraph(members)
        # The query nodes must sit in one connected piece of the core.
        from repro.graphs.components import component_of

        if all(subgraph.has_node(q) for q in nodes):
            piece = component_of(subgraph, nodes[0])
            if all(q in piece for q in nodes):
                return TeamResult(
                    method="eta-core", k=k,
                    subgraph=subgraph.subgraph(piece), contains_query=True,
                )
    return None
