"""Applications built on the probabilistic truss machinery.

* :mod:`repro.apps.team_formation` — the Section 6.5 task-driven
  team-formation case study.
* :mod:`repro.apps.community` — query-driven truss community search.
* :mod:`repro.apps.cliques` — truss-accelerated (reliable) maximum
  clique finding.
* :mod:`repro.apps.modules` — ranked functional-module detection.
"""

from repro.apps.cliques import (
    clique_probability,
    maximum_clique,
    maximum_reliable_clique,
)
from repro.apps.modules import Module, detect_modules
from repro.apps.community import (
    community_hierarchy,
    global_truss_communities,
    truss_community,
)
from repro.apps.team_formation import (
    CollaborationNetwork,
    TeamResult,
    generate_collaboration_network,
    team_by_local_truss,
    team_by_global_truss,
    team_by_eta_core,
)

__all__ = [
    "Module",
    "detect_modules",
    "clique_probability",
    "maximum_clique",
    "maximum_reliable_clique",
    "community_hierarchy",
    "global_truss_communities",
    "truss_community",
    "CollaborationNetwork",
    "TeamResult",
    "generate_collaboration_network",
    "team_by_local_truss",
    "team_by_global_truss",
    "team_by_eta_core",
]
