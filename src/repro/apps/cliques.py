"""Clique finding accelerated by truss decomposition.

Section 1 of the paper motivates trusses partly as a clique accelerator:
*"a k-clique must be in a k-truss, which can be significantly smaller
than the original graph."* This module implements that pipeline, plus
its probabilistic extension:

* :func:`maximum_clique` — exact maximum clique via Bron–Kerbosch with
  pivoting, optionally restricted to the k-truss that a clique of the
  current best size must inhabit (iterative truss pruning).
* :func:`maximum_reliable_clique` — the largest clique whose
  *all-edges-exist* probability meets a threshold gamma; candidates are
  pruned with the same truss argument plus the fact that every edge of a
  gamma-reliable clique must itself have p(e) >= gamma.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.exceptions import ParameterError
from repro.graphs.probabilistic import ProbabilisticGraph
from repro.truss.decomposition import truss_decomposition

__all__ = ["maximum_clique", "maximum_reliable_clique", "clique_probability"]

Node = Hashable


def clique_probability(graph: ProbabilisticGraph, nodes) -> float:
    """Return the probability that all edges among ``nodes`` exist.

    Raises :class:`ParameterError` if ``nodes`` is not a clique of
    ``graph`` (structurally).
    """
    members = list(nodes)
    prob = 1.0
    for i, u in enumerate(members):
        for v in members[:i]:
            if not graph.has_edge(u, v):
                raise ParameterError(
                    f"nodes do not form a clique: missing edge ({u!r}, {v!r})"
                )
            prob *= graph.probability(u, v)
    return prob


def _bron_kerbosch_max(adj: dict[Node, set[Node]]) -> set[Node]:
    """Exact maximum clique by Bron–Kerbosch with pivoting."""
    best: set[Node] = set()

    def expand(r: set[Node], p: set[Node], x: set[Node]) -> None:
        nonlocal best
        if not p and not x:
            if len(r) > len(best):
                best = set(r)
            return
        if len(r) + len(p) <= len(best):
            return  # bound: cannot beat the incumbent
        # Pivot on the vertex covering the most of P.
        pivot = max(p | x, key=lambda u: len(adj[u] & p))
        for v in list(p - adj[pivot]):
            expand(r | {v}, p & adj[v], x & adj[v])
            p.discard(v)
            x.add(v)

    expand(set(), set(adj), set())
    return best


def _truss_filtered_adjacency(
    graph: ProbabilisticGraph, min_trussness: int
) -> dict[Node, set[Node]]:
    """Adjacency restricted to edges with trussness >= ``min_trussness``."""
    tau = truss_decomposition(graph)
    adj: dict[Node, set[Node]] = {}
    for (u, v), t in tau.items():
        if t >= min_trussness:
            adj.setdefault(u, set()).add(v)
            adj.setdefault(v, set()).add(u)
    return adj


def maximum_clique(
    graph: ProbabilisticGraph, use_truss_pruning: bool = True
) -> set[Node]:
    """Return a maximum clique of ``graph`` (probabilities ignored).

    With ``use_truss_pruning`` (default) the search runs on the subgraph
    of edges whose trussness is at least the incumbent clique size + 1 —
    sound because every c-clique lies in a c-truss — re-pruning as the
    incumbent grows. Without it, plain Bron–Kerbosch on the whole graph.
    """
    if graph.number_of_edges() == 0:
        # A single node is a 1-clique; pick any node if present.
        for u in graph.nodes():
            return {u}
        return set()
    if not use_truss_pruning:
        adj = {u: set(graph.neighbors(u)) for u in graph.nodes()}
        return _bron_kerbosch_max(adj)

    tau = truss_decomposition(graph)
    k_max = max(tau.values())
    # A clique of size c needs edges of trussness >= c; try the largest
    # plausible clique size first and relax downwards.
    best: set[Node] = set()
    for target in range(k_max, 1, -1):
        if len(best) >= target:
            break
        adj = {
            u: set() for u in graph.nodes()
        }
        for (u, v), t in tau.items():
            if t >= target:
                adj[u].add(v)
                adj[v].add(u)
        adj = {u: nbrs for u, nbrs in adj.items() if nbrs}
        if not adj:
            continue
        candidate = _bron_kerbosch_max(adj)
        if len(candidate) > len(best):
            best = candidate
    if not best:
        # Fall back to any single edge (2-clique).
        u, v = next(graph.edges())
        best = {u, v}
    return best


def maximum_reliable_clique(
    graph: ProbabilisticGraph, gamma: float
) -> tuple[set[Node], float]:
    """Return the largest clique whose existence probability is >= gamma.

    Ties on size are broken towards higher probability. Returns
    ``(set(), 0.0)`` when not even a single edge reaches gamma.

    Pruning: an edge of a gamma-reliable clique must have
    ``p(e) >= gamma``; within the surviving subgraph, a c-clique needs
    trussness >= c, so maximal cliques are enumerated on the truss-
    filtered graph and scored exactly.
    """
    if not 0.0 < gamma <= 1.0:
        raise ParameterError(f"gamma must be in (0, 1], got {gamma}")
    threshold = gamma * (1.0 - 1e-9)
    survivors = [
        (u, v, p)
        for u, v, p in graph.edges_with_probabilities()
        if p >= threshold
    ]
    if not survivors:
        return set(), 0.0
    pruned = ProbabilisticGraph(survivors)

    adj = {u: set(pruned.neighbors(u)) for u in pruned.nodes()}
    best: set[Node] = set()
    best_prob = 0.0

    def expand(r: set[Node], r_prob: float, p: set[Node], x: set[Node]):
        nonlocal best, best_prob
        # Record every feasible clique, not just structurally maximal
        # ones: the probability constraint can stop growth strictly
        # inside a larger structural clique (e.g. a reliable K4 inside
        # an unreliable K5).
        if r and (len(r) > len(best) or (
            len(r) == len(best) and r_prob > best_prob
        )):
            best, best_prob = set(r), r_prob
        if not p:
            return
        if len(r) + len(p) < len(best):
            return
        pivot = max(p | x, key=lambda u: len(adj[u] & p))
        for v in list(p - adj[pivot]):
            new_prob = r_prob
            feasible = True
            for u in r:
                new_prob *= pruned.probability(u, v)
                if new_prob < threshold:
                    feasible = False
                    break
            if feasible:
                expand(r | {v}, new_prob, p & adj[v], x & adj[v])
            p.discard(v)
            x.add(v)

    expand(set(), 1.0, set(adj), set())
    if len(best) < 2:
        # Best single edge above gamma.
        u, v, p = max(survivors, key=lambda t: t[2])
        return {u, v}, p
    return best, best_prob
