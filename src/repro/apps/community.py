"""Truss-based community search on probabilistic graphs.

The paper motivates probabilistic trusses as community models
("k-trusses have successfully become the basis of several community
models [15, 20]"). This module implements query-driven community search
in the style of Huang et al. (SIGMOD 2014), lifted to the probabilistic
setting:

* :func:`truss_community` — the maximal local (k, gamma)-truss
  containing a query node, for a requested k (or the largest feasible).
* :func:`community_hierarchy` — the nested chain of communities around
  a query node for every k, exposing the "zoom level" structure truss
  communities are known for.
* :func:`global_truss_communities` — the high-confidence refinement:
  maximal approximate global (k, gamma)-trusses inside the local
  community (the same local-then-global pipeline as the paper's
  Section 6.5 case study).
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.exceptions import NodeNotFoundError, ParameterError
from repro.graphs.probabilistic import ProbabilisticGraph
from repro.core.local import LocalTrussResult, local_truss_decomposition
from repro.core.global_decomp import global_truss_decomposition

__all__ = [
    "truss_community",
    "community_hierarchy",
    "global_truss_communities",
]

Node = Hashable


def _require_node(graph: ProbabilisticGraph, node: Node) -> None:
    if not graph.has_node(node):
        raise NodeNotFoundError(node)


def truss_community(
    graph: ProbabilisticGraph,
    query: Node,
    gamma: float,
    k: int | None = None,
    local_result: LocalTrussResult | None = None,
) -> ProbabilisticGraph | None:
    """Return the maximal local (k, gamma)-truss containing ``query``.

    With ``k=None`` the largest k admitting a community around the query
    is used. Returns None when the query node is in no local truss at
    this gamma (even at k = 2).
    """
    _require_node(graph, query)
    if k is not None and k < 2:
        raise ParameterError(f"k must be at least 2, got {k}")
    if local_result is None:
        local_result = local_truss_decomposition(graph, gamma)
    ks = [k] if k is not None else range(local_result.k_max, 1, -1)
    for level in ks:
        if level > local_result.k_max:
            continue
        for truss in local_result.maximal_trusses(level):
            if truss.has_node(query):
                return truss
    return None


def community_hierarchy(
    graph: ProbabilisticGraph, query: Node, gamma: float
) -> dict[int, ProbabilisticGraph]:
    """Return ``{k: community of query}`` for every feasible k.

    The communities are nested: the k+1 community is always a subgraph
    of the k community (maximal local trusses at k+1 sit inside maximal
    local trusses at k), so the map reads as zoom levels around the
    query node.
    """
    _require_node(graph, query)
    local_result = local_truss_decomposition(graph, gamma)
    hierarchy: dict[int, ProbabilisticGraph] = {}
    for k in range(2, local_result.k_max + 1):
        for truss in local_result.maximal_trusses(k):
            if truss.has_node(query):
                hierarchy[k] = truss
                break
    return hierarchy


def global_truss_communities(
    graph: ProbabilisticGraph,
    query: Node,
    gamma: float,
    seed=None,
    epsilon: float = 0.1,
    delta: float = 0.1,
) -> list[ProbabilisticGraph]:
    """High-confidence communities: global trusses inside the local one.

    Runs the local-then-global pipeline: take the top-k local community
    around the query, globally decompose it (GBU), and return the
    maximal approximate global trusses at the top non-empty k that
    contain the query node (communities not containing it are dropped —
    they are cohesive groups, just not *this* node's).
    Returns an empty list when there is no local community.
    """
    local = truss_community(graph, query, gamma)
    if local is None:
        return []
    result = global_truss_decomposition(
        local, gamma, epsilon=epsilon, delta=delta, method="gbu", seed=seed
    )
    if result.k_max == 0:
        return []
    return [
        truss
        for truss in result.trusses[result.k_max]
        if truss.has_node(query)
    ]
