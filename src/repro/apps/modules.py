"""Functional-module detection in uncertain interaction networks.

The paper's biological motivation (Section 1): "detecting modules is
highly important ... as it helps assess the disease relevance of
certain genes". This module packages the local-then-global pipeline
into a ranked module-detection API:

1. local (k, gamma)-truss decomposition proposes candidate modules at
   every cohesion level;
2. optionally, the global decomposition (GBU) refines candidates into
   high-confidence modules;
3. candidates are scored and ranked; nested candidates are collapsed to
   their most specific (highest-k) representative.

The *score* of a module combines its truss level with its probabilistic
density: ``score = (k - 1) * density`` — higher k and denser
probability mass both push a module up (a simple, monotone ranking; the
components are reported individually so callers can re-rank).
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass

from repro.exceptions import ParameterError
from repro.graphs.probabilistic import ProbabilisticGraph
from repro.core.local import local_truss_decomposition
from repro.core.global_decomp import global_truss_decomposition
from repro.core.metrics import (
    probabilistic_clustering_coefficient,
    probabilistic_density,
)

__all__ = ["Module", "detect_modules"]

Node = Hashable
Edge = tuple[Node, Node]


@dataclass
class Module:
    """One detected module with its provenance and quality scores."""

    subgraph: ProbabilisticGraph
    k: int
    kind: str  # "local" or "global"

    @property
    def nodes(self) -> set[Node]:
        """Member set."""
        return set(self.subgraph.nodes())

    @property
    def n_nodes(self) -> int:
        """Number of members."""
        return self.subgraph.number_of_nodes()

    @property
    def n_edges(self) -> int:
        """Number of interactions."""
        return self.subgraph.number_of_edges()

    @property
    def density(self) -> float:
        """Probabilistic density (Eq. 12)."""
        return probabilistic_density(self.subgraph)

    @property
    def pcc(self) -> float:
        """Probabilistic clustering coefficient (Eq. 13)."""
        return probabilistic_clustering_coefficient(self.subgraph)

    @property
    def score(self) -> float:
        """Ranking score: ``(k - 1) * density``."""
        return (self.k - 1) * self.density

    def __repr__(self) -> str:
        return (
            f"Module(kind={self.kind!r}, k={self.k}, nodes={self.n_nodes}, "
            f"edges={self.n_edges}, score={self.score:.3f})"
        )


def detect_modules(
    graph: ProbabilisticGraph,
    gamma: float,
    min_k: int = 3,
    min_nodes: int = 3,
    refine_global: bool = False,
    seed=None,
    max_modules: int | None = None,
) -> list[Module]:
    """Detect and rank cohesive modules of an uncertain network.

    Parameters
    ----------
    graph:
        The interaction network (e.g. a scored PPI network).
    gamma:
        Definition 2's probability threshold.
    min_k:
        Smallest truss level considered a module (default 3 — at least
    	triangle-supported cohesion).
    min_nodes:
        Minimum module size.
    refine_global:
        When True, each local module is refined with the global
        decomposition (GBU) and the refined high-confidence modules are
        reported instead; modules whose refinement is empty fall back to
        their local form.
    seed:
        RNG seed for the global refinement.
    max_modules:
        Truncate the ranked list (None = all).

    Returns
    -------
    list[Module]
        Ranked by score descending. Nested local candidates are
        collapsed: a maximal (k+1)-truss inside a k-truss supersedes the
        part of the k-truss it covers only if it is a *proper* refinement
        (strictly fewer nodes); otherwise the higher-k labelling wins.
    """
    if not 0.0 <= gamma <= 1.0:
        raise ParameterError(f"gamma must be in [0, 1], got {gamma}")
    if min_k < 2:
        raise ParameterError(f"min_k must be at least 2, got {min_k}")
    if min_nodes < 2:
        raise ParameterError(f"min_nodes must be at least 2, got {min_nodes}")

    local = local_truss_decomposition(graph, gamma)
    candidates: list[Module] = []
    claimed: set[frozenset[Node]] = set()
    # Walk levels top-down so each node set is reported at its highest k.
    for k in range(local.k_max, min_k - 1, -1):
        for truss in local.maximal_trusses(k):
            if truss.number_of_nodes() < min_nodes:
                continue
            key = frozenset(truss.nodes())
            if key in claimed:
                continue
            claimed.add(key)
            candidates.append(Module(subgraph=truss, k=k, kind="local"))

    if refine_global:
        refined: list[Module] = []
        for module in candidates:
            result = global_truss_decomposition(
                module.subgraph, gamma, method="gbu", seed=seed,
                max_k=module.k,
            )
            top_k = result.k_max
            replacements = [
                Module(subgraph=t, k=top_k, kind="global")
                for t in result.trusses.get(top_k, [])
                if t.number_of_nodes() >= min_nodes
            ]
            refined.extend(replacements if replacements else [module])
        # Re-deduplicate by node set, keeping the best-scoring variant.
        best: dict[frozenset[Node], Module] = {}
        for module in refined:
            key = frozenset(module.nodes)
            if key not in best or module.score > best[key].score:
                best[key] = module
        candidates = list(best.values())

    candidates.sort(key=lambda m: (-m.score, -m.k, -m.n_edges,
                                   str(sorted(map(str, m.nodes))[0])))
    if max_modules is not None:
        candidates = candidates[:max_modules]
    return candidates
