#!/usr/bin/env python
"""Local vs global semantics, and why the global problem is hard.

Three vignettes from the paper, runnable end to end:

1. The "witness worlds" gap: a subgraph where every edge individually
   has good triangle support (local truss) but the supports never
   co-occur (tiny global alpha) — the paper's H1 vs H2/H3 distinction.
2. Non-monotonicity (Example 3): supergraphs and subgraphs of a global
   truss both failing, which is why no apriori-style pruning works.
3. The windmill (Lemma 2): exponentially many overlapping maximal
   global trusses, enumerated exactly on a small instance.

Run:  python examples/global_vs_local.py
"""

import itertools
import math

from repro import (
    alpha_exact,
    is_global_truss_exact,
    local_truss_decomposition,
)
from repro.graphs.generators import running_example, windmill_graph


def vignette_witness_gap() -> None:
    print("=" * 64)
    print("1. Local vs global: the witness-world gap (paper Figures 2-3)")
    print("=" * 64)
    g = running_example()
    local = local_truss_decomposition(g, 0.125)
    h1 = local.maximal_trusses(4)[0]
    print(f"maximal local (4, 0.125)-truss H1: {sorted(h1.nodes())}")

    alpha_h1 = alpha_exact(h1, 4)
    print(f"but alpha_4 of H1's edges = {min(alpha_h1.values()):.6f} "
          f"(= 0.5^6 = {0.5 ** 6:.6f}) << 0.125")
    print("=> every edge passes its own triangle test, yet the witnesses")
    print("   never co-occur: H1 is NOT a global (4, 0.125)-truss.")

    for nodes in (["q1", "v1", "v2", "v3"], ["q2", "v1", "v2", "v3"]):
        h = g.subgraph(nodes)
        a = min(alpha_exact(h, 4).values())
        print(f"subgraph {sorted(nodes)}: alpha_4 = {a:.3f} "
              f"-> global (4, 0.125)-truss: {is_global_truss_exact(h, 4, 0.125)}")


def vignette_non_monotonicity() -> None:
    print()
    print("=" * 64)
    print("2. Non-monotonicity of global trusses (paper Example 3)")
    print("=" * 64)
    g = running_example()
    h2 = g.subgraph(["q1", "v1", "v2", "v3"])
    print(f"H2 = {sorted(h2.nodes())} is a global (4, 0.125)-truss: "
          f"{is_global_truss_exact(h2, 4, 0.125)}")

    h_prime = h2.copy()
    h_prime.add_edge("q2", "v1", g.probability("q2", "v1"))
    print(f"H'  (H2 + pendant q2 edge)  is one: "
          f"{is_global_truss_exact(h_prime, 4, 0.125)}")

    h_dbl = h2.copy()
    h_dbl.remove_edge("q1", "v1")
    print(f"H'' (H2 - one edge)         is one: "
          f"{is_global_truss_exact(h_dbl, 4, 0.125)}")
    print("=> neither growing nor shrinking preserves the property;")
    print("   no apriori-style search-space pruning is possible.")


def vignette_windmill() -> None:
    print()
    print("=" * 64)
    print("3. Exponentially many maximal global trusses (paper Lemma 2)")
    print("=" * 64)
    n, p = 4, 0.5
    g = windmill_graph(n, p)
    half = math.ceil(n / 2)
    gamma = p ** (3 * half)
    print(f"windmill: {n} triangles sharing a hub, every p = {p}")
    print(f"k = 3, gamma = p^(3 * ceil(n/2)) = {gamma}")

    blades = [[f"b{i}_0", f"b{i}_1"] for i in range(n)]
    maximal = []
    for size in range(n, 0, -1):
        for combo in itertools.combinations(range(n), size):
            nodes = {"hub"} | {
                x for i in combo for x in blades[i]
            }
            sub = g.subgraph(nodes)
            if is_global_truss_exact(sub, 3, gamma):
                key = frozenset(combo)
                if not any(key < other for other in maximal):
                    maximal.append(key)
    expected = math.comb(n, half)
    print(f"maximal global (3, gamma)-trusses found: {len(maximal)} "
          f"(theory: C({n}, {half}) = {expected})")
    for combo in sorted(maximal, key=sorted):
        print(f"  blades {sorted(combo)}")
    print("=> the count grows as C(n, n/2) — exponential in n, which is")
    print("   why the paper resorts to heuristic (GBU) enumeration.")


if __name__ == "__main__":
    vignette_witness_gap()
    vignette_non_monotonicity()
    vignette_windmill()
