#!/usr/bin/env python
"""Quickstart: probabilistic truss decomposition in five minutes.

Builds the paper's running example (Figure 1), walks through edge
support probabilities, the local (k, gamma)-truss decomposition, exact
global-truss checking and the sampling-based global decomposition.

Run:  python examples/quickstart.py
"""

from repro import (
    ProbabilisticGraph,
    SupportProbability,
    alpha_exact,
    global_truss_decomposition,
    local_truss_decomposition,
    truss_decomposition,
)
from repro.graphs.generators import running_example


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Build a probabilistic graph (or use the paper's running example).
    # ------------------------------------------------------------------
    g = ProbabilisticGraph()
    g.add_edge("alice", "bob", 0.9)
    g.add_edge("bob", "carol", 0.8)
    g.add_edge("alice", "carol", 0.7)
    print(f"toy graph: {g}")
    print(f"p(alice, bob) = {g.probability('alice', 'bob')}")

    paper = running_example()
    print(f"\npaper running example (Figure 1): {paper}")

    # ------------------------------------------------------------------
    # 2. Edge support probabilities: Pr[edge is in >= t triangles].
    # ------------------------------------------------------------------
    sp = SupportProbability.from_edge(paper, "q1", "v1")
    print("\nedge (q1, v1):")
    print(f"  potential triangles (k_e): {sp.max_support}")
    for t in range(sp.max_support + 1):
        print(f"  Pr[sup >= {t} | edge exists] = {sp.tail(t):.4f}")

    # ------------------------------------------------------------------
    # 3. Deterministic trussness (probabilities ignored) for reference.
    # ------------------------------------------------------------------
    tau = truss_decomposition(paper)
    print("\ndeterministic trussness:")
    for e in sorted(tau, key=str):
        print(f"  {e}: {tau[e]}")

    # ------------------------------------------------------------------
    # 4. Local (k, gamma)-truss decomposition (Algorithm 1).
    # ------------------------------------------------------------------
    gamma = 0.125
    local = local_truss_decomposition(paper, gamma)
    print(f"\nlocal decomposition at gamma = {gamma}: k_max = {local.k_max}")
    for k in range(2, local.k_max + 1):
        for truss in local.maximal_trusses(k):
            print(f"  maximal local ({k}, {gamma})-truss: "
                  f"{sorted(truss.nodes())}")

    # ------------------------------------------------------------------
    # 5. Exact global-truss probabilities (small subgraphs only).
    # ------------------------------------------------------------------
    h2 = paper.subgraph(["q1", "v1", "v2", "v3"])
    alpha = alpha_exact(h2, 4)
    print(f"\nexact alpha_4 on H2 = {sorted(h2.nodes())}:")
    for e, a in sorted(alpha.items(), key=lambda kv: str(kv[0])):
        print(f"  alpha({e}) = {a:.4f}")

    # ------------------------------------------------------------------
    # 6. Sampling-based global decomposition (Algorithms 3-5).
    # ------------------------------------------------------------------
    result = global_truss_decomposition(
        paper, gamma=0.1, method="gtd", seed=7, n_samples=2000
    )
    print(f"\nglobal decomposition (GTD, gamma=0.1): k_max = {result.k_max}")
    for k, truss in result.all_trusses():
        print(f"  global ({k})-truss: {sorted(truss.nodes())}")


if __name__ == "__main__":
    main()
