#!/usr/bin/env python
"""Truss-powered cliques and community search on an uncertain network.

Two applications the paper's introduction motivates:

1. *Maximum (reliable) clique finding* — "a k-clique must be in a
   k-truss, which can be significantly smaller than the original graph";
   we find the largest clique, then the largest clique whose existence
   probability clears a threshold.
2. *Community search* — the nested hierarchy of local (k, gamma)-truss
   communities around a query protein, then the high-confidence global
   refinement.

Run:  python examples/cliques_and_communities.py
"""

from repro import load_dataset, local_truss_decomposition
from repro.apps.cliques import (
    clique_probability,
    maximum_clique,
    maximum_reliable_clique,
)
from repro.apps.community import (
    community_hierarchy,
    global_truss_communities,
)


def main() -> None:
    gamma = 0.5
    ppi = load_dataset("fruitfly", seed=42)
    print(f"network: {ppi.number_of_nodes()} nodes, "
          f"{ppi.number_of_edges()} edges\n")

    # ------------------------------------------------------------------
    # 1. Maximum clique, then maximum reliable clique.
    # ------------------------------------------------------------------
    clique = maximum_clique(ppi)
    print(f"maximum clique (structure only): {len(clique)} nodes "
          f"{sorted(clique)}")
    print(f"  ... but it exists in full with probability "
          f"{clique_probability(ppi, clique):.4f}")

    for threshold in (0.3, 0.6, 0.9):
        reliable, prob = maximum_reliable_clique(ppi, threshold)
        print(f"largest clique with existence prob >= {threshold}: "
              f"{len(reliable)} nodes (prob {prob:.4f})")

    # ------------------------------------------------------------------
    # 2. Community search around a protein in the densest module.
    # ------------------------------------------------------------------
    local = local_truss_decomposition(ppi, gamma)
    top_module = local.maximal_trusses(local.k_max)[0]
    query = next(top_module.nodes())
    print(f"\nquery protein: {query!r} (lives in the top k={local.k_max} "
          "module)")

    hierarchy = community_hierarchy(ppi, query, gamma)
    print("local community hierarchy (zoom levels):")
    for k in sorted(hierarchy):
        community = hierarchy[k]
        print(f"  k={k}: {community.number_of_nodes()} proteins, "
              f"{community.number_of_edges()} interactions")

    refined = global_truss_communities(ppi, query, gamma, seed=7)
    print("high-confidence (global) communities containing the query:")
    for community in refined:
        print(f"  {community.number_of_nodes()} proteins, "
              f"{community.number_of_edges()} interactions")


if __name__ == "__main__":
    main()
