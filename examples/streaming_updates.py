#!/usr/bin/env python
"""Monitoring cohesive groups in an *evolving* uncertain network.

Interaction networks change: links appear, confidences get revised,
links vanish. Instead of re-decomposing after every event, the dynamic
maintainers update the k-truss incrementally (deletion cascades) or with
region-scoped repair (insertions).

The scenario: a stream of edge events over an uncertain social network;
we track the members of the maximal local (3, 0.5)-trusses after every
event and verify the final state against a from-scratch decomposition.

Run:  python examples/streaming_updates.py
"""

import numpy as np

from repro import load_dataset, local_truss_decomposition
from repro.truss.dynamic import DynamicLocalTruss

K = 3
GAMMA = 0.5


def main() -> None:
    rng = np.random.default_rng(17)
    graph = load_dataset("wikivote", seed=42, scale=0.4)
    print(f"initial network: {graph.number_of_nodes()} nodes, "
          f"{graph.number_of_edges()} edges")

    tracker = DynamicLocalTruss(graph, K, GAMMA)
    print(f"initial ({K}, {GAMMA})-truss membership: "
          f"{len(tracker.truss_edges())} edges in "
          f"{len(tracker.maximal_trusses())} trusses\n")

    shadow = graph.copy()
    nodes = sorted(shadow.nodes())
    events = {"insert": 0, "delete": 0, "reweight": 0}
    for step in range(60):
        roll = rng.random()
        edges = list(shadow.edges())
        if roll < 0.4 and edges:
            u, v = edges[int(rng.integers(len(edges)))]
            tracker.remove_edge(u, v)
            shadow.remove_edge(u, v)
            events["delete"] += 1
            kind = f"delete ({u}, {v})"
        elif roll < 0.75:
            u = nodes[int(rng.integers(len(nodes)))]
            v = nodes[int(rng.integers(len(nodes)))]
            if u == v:
                continue
            p = float(rng.uniform(0.3, 1.0))
            is_new = not shadow.has_edge(u, v)
            tracker.insert_edge(u, v, p)
            shadow.add_edge(u, v, p)
            events["insert" if is_new else "reweight"] += 1
            kind = f"{'insert' if is_new else 'reweight'} ({u}, {v}, p={p:.2f})"
        else:
            if not edges:
                continue
            u, v = edges[int(rng.integers(len(edges)))]
            p = float(rng.uniform(0.35, 1.0))
            tracker.insert_edge(u, v, p)
            shadow.set_probability(u, v, p)
            events["reweight"] += 1
            kind = f"reweight ({u}, {v}, p={p:.2f})"
        if step % 12 == 0:
            print(f"step {step:>3}: {kind:<34} -> "
                  f"{len(tracker.truss_edges())} truss edges, "
                  f"{len(tracker.maximal_trusses())} trusses")

    print(f"\nprocessed events: {events}")

    # Verify against a full from-scratch decomposition of the end state.
    static = local_truss_decomposition(shadow, GAMMA)
    static_edges = {e for e, tau in static.trussness.items() if tau >= K}
    assert tracker.truss_edges() == static_edges
    print("final state verified against a from-scratch decomposition: OK")
    print(f"final truss membership: {len(static_edges)} edges in "
          f"{len(tracker.maximal_trusses())} maximal trusses")


if __name__ == "__main__":
    main()
