#!/usr/bin/env python
"""Task-driven team formation (the paper's Section 6.5 case study).

Given a collaboration network whose edge probabilities are conditioned
on a task's keywords, find a team of researchers containing two named
experts that is cohesive *with respect to the task*. Compares three
formulations:

* local (k, gamma)-truss (per-collaboration confidence),
* global (k, gamma)-truss (whole-team confidence — smallest, densest),
* (k, eta)-core (the Bonchi et al. baseline — balloons in size).

Run:  python examples/team_formation.py
"""

from repro.apps.team_formation import (
    generate_collaboration_network,
    team_by_eta_core,
    team_by_global_truss,
    team_by_local_truss,
)

QUERY = ["Jeffrey D. Ullman", "Piotr Indyk"]
KEYWORDS = ["data", "algorithm"]
GAMMA = 1e-3


def show(team, label):
    if team is None:
        print(f"{label}: no team found")
        return
    members = sorted(map(str, team.subgraph.nodes()))
    preview = ", ".join(members[:6]) + (" ..." if len(members) > 6 else "")
    print(f"{label}:")
    print(f"  k = {team.k}, members = {team.n_members}, "
          f"collaborations = {team.n_edges}")
    print(f"  density = {team.density:.4f}, PCC = {team.pcc:.4f}")
    print(f"  team: {preview}")


def main() -> None:
    network = generate_collaboration_network(seed=11)
    print(f"collaboration network: "
          f"{network.structure.number_of_nodes()} authors, "
          f"{network.structure.number_of_edges()} co-author pairs")
    print(f"query Q = {QUERY}")
    print(f"task keywords W = {KEYWORDS}, gamma = eta = {GAMMA}\n")

    task_graph = network.task_graph(KEYWORDS)

    local = team_by_local_truss(task_graph, QUERY, GAMMA)
    show(local, "local (k, gamma)-truss team")

    print()
    global_teams = team_by_global_truss(task_graph, QUERY, GAMMA, seed=2)
    if global_teams:
        show(global_teams[0], "global (k, gamma)-truss team (best)")
        print(f"  ({len(global_teams)} maximal global trusses found in "
              "the local team, as in the paper's 17)")
    else:
        print("global truss team: none")

    print()
    core = team_by_eta_core(task_graph, QUERY, GAMMA)
    show(core, "(k, eta)-core team [Bonchi et al. baseline]")

    if local and core and global_teams:
        print(
            f"\nsummary: core {core.n_members} members >> "
            f"local truss {local.n_members} >= "
            f"global truss {global_teams[0].n_members} — trusses give "
            "realistic team sizes, exactly the paper's Figure 10 story."
        )


if __name__ == "__main__":
    main()
