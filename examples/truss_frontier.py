#!/usr/bin/env python
"""The complete (k, gamma) truss frontier — both §7 open questions at once.

The paper's future work asks (1) better global heuristics and (2) how to
decompose for all gamma at a fixed k. The library answers (2) with one
max-min peel per k and composes them into a *frontier*: for every edge,
the exact trade-off curve between cohesion (k) and confidence (gamma).

This example computes the frontier of the FruitFly PPI network, prints
trade-off curves for a strong and a weak interaction, and answers a grid
of (k, gamma) queries instantly — no re-decomposition.

Run:  python examples/truss_frontier.py
"""

from repro import load_dataset
from repro.core.frontier import truss_frontier


def main() -> None:
    ppi = load_dataset("fruitfly", seed=42)
    print(f"network: {ppi.number_of_nodes()} proteins, "
          f"{ppi.number_of_edges()} interactions")

    frontier = truss_frontier(ppi)
    print(f"frontier computed: structural k_max = {frontier.k_max}\n")

    # Pick the strongest and weakest interaction by k = 3 gamma-trussness.
    ranked = sorted(
        frontier.frontier.items(),
        key=lambda kv: kv[1][1] if len(kv[1]) > 1 else 0.0,
    )
    weak_edge, _ = ranked[0]
    strong_edge, _ = ranked[-1]

    for label, edge in (("strongest", strong_edge), ("weakest", weak_edge)):
        print(f"{label} interaction {edge} — cohesion/confidence curve:")
        for k, gamma in frontier.edge_profile(*edge):
            bar = "#" * int(round(40 * gamma))
            print(f"  k={k}: gamma_k = {gamma:.4f} {bar}")
        print()

    # Instant (k, gamma) queries across a grid.
    print("maximal local (k, gamma)-trusses from the frontier "
          "(no re-decomposition):")
    print(f"{'k':>3} {'gamma':>6} {'#trusses':>9} {'largest':>8}")
    for k in range(3, frontier.k_max + 1):
        for gamma in (0.2, 0.5, 0.8):
            trusses = frontier.maximal_trusses(k, gamma)
            largest = max(
                (t.number_of_nodes() for t in trusses), default=0
            )
            print(f"{k:>3} {gamma:>6.1f} {len(trusses):>9} {largest:>8}")


if __name__ == "__main__":
    main()
