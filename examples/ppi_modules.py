#!/usr/bin/env python
"""Finding protein functional modules in an uncertain PPI network.

The paper's flagship motivation (Section 1): protein-protein interaction
networks carry per-edge confidence scores, and functional modules are
cohesive subgraphs that exist *as a whole* with decent probability.
This example decomposes the FruitFly-like synthetic PPI network:

1. local (k, gamma)-trusses = candidate modules (per-interaction test);
2. global (k, gamma)-trusses = high-confidence modules (the whole module
   must materialise as a connected k-truss);
3. a comparison of their sizes, densities and PCC.

Run:  python examples/ppi_modules.py
"""

from repro import (
    global_truss_decomposition,
    local_truss_decomposition,
    load_dataset,
    probabilistic_clustering_coefficient,
    probabilistic_density,
)


def describe(label, trusses):
    if not trusses:
        print(f"  {label}: none")
        return
    for t in trusses:
        pcc = (
            probabilistic_clustering_coefficient(t)
            if t.number_of_edges() > 1 else float("nan")
        )
        print(
            f"  {label}: {t.number_of_nodes()} proteins, "
            f"{t.number_of_edges()} interactions, "
            f"density {probabilistic_density(t):.3f}, PCC {pcc:.3f}"
        )


def main() -> None:
    gamma = 0.5
    ppi = load_dataset("fruitfly", seed=42)
    print(f"PPI network: {ppi.number_of_nodes()} proteins, "
          f"{ppi.number_of_edges()} scored interactions")

    # ------------------------------------------------------------------
    # Candidate modules: local (k, gamma)-trusses.
    # ------------------------------------------------------------------
    local = local_truss_decomposition(ppi, gamma)
    print(f"\nlocal decomposition at gamma={gamma}: k_max = {local.k_max}")
    for k in range(3, local.k_max + 1):
        modules = local.maximal_trusses(k)
        print(f"k = {k}: {len(modules)} candidate modules")
    print("\ntop candidate modules (k = k_max):")
    describe("module", local.maximal_trusses(local.k_max))

    # ------------------------------------------------------------------
    # High-confidence modules: global (k, gamma)-trusses via GBU.
    # ------------------------------------------------------------------
    result = global_truss_decomposition(
        ppi, gamma, method="gbu", seed=7, local_result=local
    )
    print(f"\nglobal decomposition (GBU): k_max = {result.k_max}")
    top = result.trusses.get(result.k_max, [])
    print("high-confidence modules (k = k_max):")
    describe("module", top)

    # ------------------------------------------------------------------
    # The paper's claim in action: global modules are tighter.
    # ------------------------------------------------------------------
    k = min(local.k_max, result.k_max)
    local_avg = _avg_density(local.maximal_trusses(k))
    global_avg = _avg_density(result.trusses.get(k, []))
    print(f"\nat k = {k}: avg density local = {local_avg:.3f}, "
          f"global = {global_avg:.3f}")
    if global_avg >= local_avg:
        print("=> global (k, gamma)-trusses are the denser, "
              "higher-confidence modules, as the paper reports.")


def _avg_density(trusses):
    if not trusses:
        return 0.0
    return sum(probabilistic_density(t) for t in trusses) / len(trusses)


if __name__ == "__main__":
    main()
