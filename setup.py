"""Legacy setup shim.

Metadata lives in pyproject.toml; this file only exists so that
``pip install -e . --no-use-pep517`` works on environments without the
``wheel`` package (offline editable installs).
"""

from setuptools import setup

setup()
